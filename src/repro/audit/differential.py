"""Differential conformance checking of whole scenario runs.

One seeded :class:`ScenarioSpec` describes a complete experiment
(topology, crash schedule, loss model).  :func:`check_spec` runs it under
paired configurations and asserts what each pair promises:

- **vectorized vs scalar medium**: bit-identical traces (the scalar loop
  is the reference implementation of the same seeded draws);
- **parallel vs serial fabric**: identical summaries (the process pool
  must not perturb results);
- **digest ablation (R-2 off)**: no bit-identity promise -- instead both
  runs must satisfy every applicable trace audit;

plus ground-truth oracles on the primary run:

- **completeness**: under a loss model whose total drop budget is below
  the forwarding machinery's tolerance (``max_forward_retries`` drops can
  never exhaust the GW ladder *and* the origin watch), every injected
  crash must be known to every operational clustered node by the end;
- **accuracy**: a detection of a node that is operational at the end must
  be refuted, unless it happened inside the final recovery window (where
  the refutation legitimately falls past the horizon);

plus the trace audits of :mod:`repro.audit.invariants` and a directed
:func:`probe_forwarder_conformance` that drives an
:class:`~repro.fds.intercluster.InterclusterForwarder` with crafted
seeded traffic (merged duties, partial acknowledgment coverage, inbound
retries) and replays the recorded events through the reference model --
the divergences such probes target are too rare in end-to-end runs for a
random soak to find.

When a violation is found, :func:`shrink_spec` greedily reduces the
scenario (fewer executions, clusters, members, crashes; simpler loss)
while the violation reproduces, and :func:`repro_snippet` renders the
minimal spec as a ready-to-paste pytest case.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.audit.invariants import run_audit_statuses
from repro.experiments.parallel import run_scenario_summaries
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.fds.config import FdsConfig
from repro.fds.events import (
    DETECTION,
    REFUTATION,
    TAKEOVER,
    TAKEOVER_REVERTED,
)
from repro.fds.intercluster import InterclusterForwarder
from repro.fds.messages import FailureReport, HealthStatusUpdate
from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium
from repro.sim.node import SimNode
from repro.sim.trace import RecordingTracer, iter_jsonl
from repro.util.geometry import Vec2


@dataclass(frozen=True)
class ScenarioSpec:
    """A seeded, self-contained scenario for differential checking.

    Everything :func:`check_spec` runs derives deterministically from
    these fields, so a spec *is* a repro: same spec, same verdict.
    ``phi`` is deliberately generous relative to ``thop`` so the
    round-structure audit stays applicable (the simulator is
    event-driven; a long idle tail costs no wall-clock).
    """

    seed: int = 0
    cluster_count: int = 4
    members_per_cluster: int = 12
    crash_count: int = 2
    executions: int = 5
    loss_kind: str = "perfect"
    loss_p: float = 0.3
    loss_budget: int = 2
    spacing_factor: float = 1.25
    max_backups: int = 2
    phi: float = 20.0
    thop: float = 0.5

    def fds_config(self, use_digests: bool = True) -> FdsConfig:
        return FdsConfig(phi=self.phi, thop=self.thop, use_digests=use_digests)

    def loss_params(self) -> Tuple[Tuple[str, float], ...]:
        if self.loss_kind == "bounded":
            return (("p", self.loss_p), ("budget", float(self.loss_budget)))
        if self.loss_kind == "bernoulli":
            return (("p", self.loss_p),)
        if self.loss_kind == "gilbert":
            # Bursty-channel sweep: ``loss_p`` scales the Good -> Bad
            # entry rate, so the stationary loss rises monotonically
            # with it while bursts stay genuinely bursty (p_bad = 0.8).
            return (
                ("p_good", 0.02),
                ("p_bad", 0.8),
                ("p_gb", self.loss_p / 5.0),
                ("p_bg", 0.3),
            )
        return ()

    def to_config(
        self,
        vectorized: bool = True,
        use_digests: bool = True,
        engine: str = "event",
    ) -> ScenarioConfig:
        return ScenarioConfig(
            cluster_count=self.cluster_count,
            members_per_cluster=self.members_per_cluster,
            crash_count=self.crash_count,
            executions=self.executions,
            seed=self.seed,
            loss_kind=self.loss_kind,
            loss_params=self.loss_params(),
            spacing_factor=self.spacing_factor,
            max_backups=self.max_backups,
            vectorized=vectorized,
            engine=engine,
            fds=self.fds_config(use_digests=use_digests),
        )


def random_spec(rng: np.random.Generator) -> ScenarioSpec:
    """Sample one scenario from the soak distribution.

    Biased toward tight 2x2 lattices (multi-boundary gateways, the
    geometry where inter-cluster forwarding earns its keep) and toward
    the bounded-adversary loss model, under which completeness is a hard
    guarantee rather than a probabilistic one.
    """
    loss_kind = str(
        rng.choice(["perfect", "bounded", "bounded", "bernoulli", "gilbert"])
    )
    return ScenarioSpec(
        seed=int(rng.integers(0, 2**31 - 1)),
        cluster_count=int(rng.choice([2, 3, 4, 4])),
        members_per_cluster=int(rng.integers(8, 17)),
        crash_count=int(rng.integers(0, 4)),
        executions=int(rng.integers(4, 8)),
        loss_kind=loss_kind,
        loss_p=float(rng.choice([0.15, 0.25, 0.35])),
        loss_budget=int(rng.integers(1, 3)),
        spacing_factor=float(rng.choice([1.25, 1.4, 1.6])),
        max_backups=int(rng.choice([1, 2, 3])),
    )


@dataclass(frozen=True)
class Violation:
    """One conformance failure of a spec."""

    kind: str
    description: str


def trace_fingerprint(tracer: RecordingTracer) -> str:
    """Stable digest of a full trace (the bit-identity currency).

    Streams line by line into the hash -- a soak trace never has to
    exist as one giant string just to be fingerprinted.
    """
    digest = hashlib.sha256()
    for line in iter_jsonl(tracer.records):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def completeness_guaranteed(spec: ScenarioSpec) -> bool:
    """Whether the spec's loss model makes completeness deterministic.

    Blocking one boundary crossing costs at least ``max_forward_retries
    + 1`` targeted drops (the GW's attempts alone), and the origin watch
    re-triggers the whole ladder besides -- so any adversary limited to
    ``max_forward_retries`` total drops cannot prevent eventual
    propagation.  Under unbounded Bernoulli loss the paper only promises
    probabilistic completeness, so the oracle would be unsound.
    """
    if spec.loss_kind == "perfect":
        return True
    if spec.loss_kind == "bounded":
        return spec.loss_budget <= spec.fds_config().max_forward_retries
    return False


def completeness_violations(
    spec: ScenarioSpec, result: ScenarioResult
) -> List[Violation]:
    if not completeness_guaranteed(spec):
        return []
    return [
        Violation(
            kind="completeness",
            description=(
                f"crash of node {int(nid)} unknown to some operational "
                f"node at the end despite loss within the drop budget"
            ),
        )
        for nid in result.properties.incomplete_failures
    ]


def accuracy_violations(
    spec: ScenarioSpec, result: ScenarioResult
) -> List[Violation]:
    """False suspicions must be refuted (or fall in the final window).

    Trace-based: pair every detection of a node that is operational at
    the end with a later refutation *somewhere*.  A detection inside the
    last ``recovery window`` before the horizon may legitimately still be
    awaiting its repair, so it is excused; when the run had no actual
    drops there is no excuse and the final-state report must be clean.
    """
    config = spec.fds_config()
    horizon = result.network.sim.now
    window = (config.max_forward_retries + 1) * config.phi
    operational = set(result.network.operational_ids())
    refuted_at: dict = {}
    for record in result.tracer.iter_kind(REFUTATION):
        target = int(record.detail["target"])
        refuted_at.setdefault(target, []).append(record.time)
    violations: List[Violation] = []
    for record in result.tracer.iter_kind(DETECTION):
        target = int(record.detail["target"])
        if target not in operational:
            continue
        if any(t >= record.time for t in refuted_at.get(target, [])):
            continue
        if record.time > horizon - window:
            continue  # refutation legitimately past the horizon
        violations.append(
            Violation(
                kind="accuracy",
                description=(
                    f"node {record.node} detected operational node "
                    f"{target} at t={record.time:.3f} with no refutation "
                    f"in the remaining {horizon - record.time:.1f}s"
                ),
            )
        )
    if result.messages.losses == 0:
        violations.extend(
            Violation(
                kind="accuracy",
                description=(
                    f"node {int(a)} still suspects operational node "
                    f"{int(b)} at the end of a loss-free run"
                ),
            )
            for a, b in result.properties.accuracy_violations
        )
    return violations


def audit_violations(
    spec: ScenarioSpec, result: ScenarioResult, label: str
) -> List[Violation]:
    violations: List[Violation] = []
    for status in run_audit_statuses(
        result.tracer, result.config.fds, result.crash_times
    ):
        violations.extend(
            Violation(
                kind=f"audit:{finding.audit}",
                description=f"[{label}] {finding.description}",
            )
            for finding in status.findings
        )
    return violations


# ----------------------------------------------------------------------
# Array-engine differential pair
# ----------------------------------------------------------------------
#: The record kinds both engines emit with identical semantics -- the
#: service's externally visible verdicts.  The event engine additionally
#: traces transport-level kinds (relays, peer requests, gateway duties)
#: that the round-level engine folds into counters.
VERDICT_KINDS = (DETECTION, REFUTATION, TAKEOVER, TAKEOVER_REVERTED)


def verdict_records(tracer: RecordingTracer) -> List[Tuple]:
    """The verdict-bearing records of a trace as comparable tuples."""
    return [
        (
            record.time,
            record.kind,
            record.node,
            tuple(sorted(record.detail.items())),
        )
        for record in tracer.records
        if record.kind in VERDICT_KINDS
    ]


def array_engine_violations(
    spec: ScenarioSpec, event: ScenarioResult
) -> List[Violation]:
    """Verdict-level equivalence of the round-level array engine.

    The engines share the placement and faultload streams (bit-identical
    topology and crash schedule) but draw per-copy loss privately, so
    the pair compares what is loss-independent or guaranteed:

    - field shape: node/cluster/crash counts must be equal;
    - crashed-target detections: a crashed node is silent, so its CH
      detects it at exactly ``0.4*phi + 2*thop`` after the crash no
      matter what the links do -- the per-target latency maps must be
      equal entry for entry (including never-detected ``None`` for a
      crash at the horizon).  The anchor assumes the CH was not already
      suspecting the target when it crashed, so a target that either
      engine *falsely* detected before its crash time (possible under
      heavy loss, and timed by each engine's private draws) is exempt;
    - guaranteed completeness: when the loss model's drop budget is
      within the forwarding tolerance, both engines must report every
      crash to every operational node;
    - the accuracy oracle: the array run must satisfy the same
      trace-based refutation discipline as the event run;
    - perfect links: with no loss draws at all, the verdict-bearing
      records must match bit for bit, times included.

    Raw completeness under unbounded Bernoulli loss, transmission
    counts, and transport-level trace kinds are deliberately *not*
    compared: they depend on which copies each engine's private stream
    dropped.

    The loss-independent anchors above hold under every loss kind the
    spec distribution samples, including the stateful ``gilbert``
    chains -- each engine drives its own chains from its private stream,
    but crashed-target latencies and guaranteed completeness do not
    depend on the draws.

    An **energy sub-pair** reruns the array engine with the ledger
    journal on and replays every charge batch through the scalar
    :class:`~repro.energy.model.EnergyModel`: levels, counters, totals
    and spread must be bit-identical, and the debit population must
    mirror the run's message accounting exactly (one transmit debit per
    transmission, one receive debit per delivered copy).
    """
    array = run_scenario(spec.to_config(engine="array"))
    violations: List[Violation] = []

    event_summary = event.summary()
    array_summary = array.summary()
    for key in ("nodes", "clusters", "crashes"):
        if event_summary[key] != array_summary[key]:
            violations.append(
                Violation(
                    kind="differential:array",
                    description=(
                        f"field shape diverged between engines: {key} "
                        f"{array_summary[key]} != {event_summary[key]}"
                    ),
                )
            )

    predetected = set()
    for result in (event, array):
        for record in result.tracer.iter_kind(DETECTION):
            target = int(record.detail["target"])
            crash_time = result.crash_times.get(target)
            if crash_time is not None and record.time < crash_time:
                predetected.add(target)
    event_latencies = {
        t: v for t, v in event.detection_latencies.items()
        if t not in predetected
    }
    array_latencies = {
        t: v for t, v in array.detection_latencies.items()
        if t not in predetected
    }
    if event_latencies != array_latencies:
        violations.append(
            Violation(
                kind="differential:array",
                description=(
                    "crashed-target detection latencies diverged "
                    f"(loss-independent anchor): array {array_latencies} "
                    f"!= event {event_latencies}"
                ),
            )
        )

    if completeness_guaranteed(spec):
        for label, result in (("event", event), ("array", array)):
            if result.properties.mean_completeness != 1.0:
                violations.append(
                    Violation(
                        kind="differential:array",
                        description=(
                            f"{label} engine incomplete "
                            f"({result.properties.mean_completeness:.4f}) "
                            "despite loss within the drop budget"
                        ),
                    )
                )

    violations.extend(
        Violation(kind="differential:array", description=f"[array] {v.description}")
        for v in accuracy_violations(spec, array)
    )

    if spec.loss_kind == "perfect":
        if verdict_records(event.tracer) != verdict_records(array.tracer):
            violations.append(
                Violation(
                    kind="differential:array",
                    description=(
                        "verdict records diverged between engines on "
                        "loss-free links (must be bit-identical)"
                    ),
                )
            )

    violations.extend(energy_ledger_violations(spec))
    return violations


def formation_violations(spec: ScenarioSpec) -> List[Violation]:
    """The distributed-formation pair: event vs array, plus shape audit.

    **Lossless leg** (both engines, ``formation="protocol"`` over
    perfect links): the placement stream is shared and no loss draw is
    consulted, so the six-round protocol must converge to the *same*
    clustering on both engines -- the extracted
    :class:`~repro.cluster.state.ClusterLayout` (clusters, deputies,
    boundaries, unclustered set) and the FDS phase's verdict records
    must be bit-identical, times included.

    **Lossy leg** (array engine only, the spec's own loss model): the
    engines draw formation loss from private streams, so under loss the
    elected head sets legitimately diverge (which also re-deals the
    faultload candidate list) and no cross-engine comparison is sound.
    Instead the array outcome must satisfy the structural layout
    invariants of :func:`~repro.sim.array_engine.formation.
    formation_shape_violations`: heads marked and self-affiliated,
    members in radio range of their confirmed head, forwarder ladders
    within width and strictly NID-ascending, extraction round-trips
    through ``ClusterLayout`` validation.
    """
    from repro.sim.array_engine.formation import (
        formation_cluster_layout,
        formation_shape_violations,
    )

    violations: List[Violation] = []

    lossless = replace(spec, loss_kind="perfect")
    event = run_scenario(
        replace(lossless.to_config(engine="event"), formation="protocol")
    )
    array = run_scenario(
        replace(lossless.to_config(engine="array"), formation="protocol")
    )
    layout = formation_cluster_layout(array.formation)
    for field_name, got, want in (
        ("clusters", layout.clusters, event.layout.clusters),
        ("boundaries", layout.boundaries, event.layout.boundaries),
        ("unclustered", layout.unclustered, event.layout.unclustered),
    ):
        if got != want:
            violations.append(
                Violation(
                    kind="differential:formation",
                    description=(
                        f"lossless formation layouts diverged on "
                        f"{field_name}: array {got!r} != event {want!r}"
                    ),
                )
            )
    if verdict_records(event.tracer) != verdict_records(array.tracer):
        violations.append(
            Violation(
                kind="differential:formation",
                description=(
                    "verdict records diverged between engines after "
                    "lossless protocol formation (must be bit-identical)"
                ),
            )
        )
    if event.properties.completeness != array.properties.completeness:
        violations.append(
            Violation(
                kind="differential:formation",
                description=(
                    "completeness diverged after lossless protocol "
                    f"formation: array {array.properties.completeness} "
                    f"!= event {event.properties.completeness}"
                ),
            )
        )

    if spec.loss_kind != "perfect":
        lossy = run_scenario(
            replace(spec.to_config(engine="array"), formation="protocol")
        )
        violations.extend(
            Violation(
                kind="differential:formation",
                description=f"lossy formation shape invariant broken: {v}",
            )
            for v in formation_shape_violations(lossy.formation)
        )
    return violations


def energy_ledger_violations(spec: ScenarioSpec) -> List[Violation]:
    """The array energy ledger vs a scalar EnergyModel replay.

    Runs the spec through the array engine with ``track_energy`` on and
    the charge journal recording, then replays the journal debit by
    debit through :class:`~repro.energy.model.EnergyModel`.  The two
    must agree bit for bit (per-node levels and counters, totals,
    spread), and the ledger's counters must mirror the run's message
    accounting: one transmit debit per counted transmission, one
    receive debit per delivered copy.
    """
    from repro.sim.array_engine import run_array_scenario
    from repro.sim.array_engine.energy import replay_journal

    config = replace(spec.to_config(engine="array"), track_energy=True)
    result = run_array_scenario(config, record_energy_journal=True)
    ledger = result.energy
    model = replay_journal(ledger)
    violations: List[Violation] = []

    if ledger.totals() != model.totals() or ledger.spread() != model.spread():
        violations.append(
            Violation(
                kind="differential:energy",
                description=(
                    "array energy ledger diverged from the scalar replay: "
                    f"ledger {ledger.totals()} spread {ledger.spread()} != "
                    f"model {model.totals()} spread {model.spread()}"
                ),
            )
        )
    for node in range(ledger.node_count):
        entry = model._entry(node)
        if (
            entry.level != ledger.level[node]
            or entry.tx_count != ledger.tx_count[node]
            or entry.rx_count != ledger.rx_count[node]
        ):
            violations.append(
                Violation(
                    kind="differential:energy",
                    description=(
                        f"array energy ledger diverged at node {node}: "
                        f"level {ledger.level[node]!r} tx "
                        f"{int(ledger.tx_count[node])} rx "
                        f"{int(ledger.rx_count[node])} != scalar "
                        f"{entry.level!r}/{entry.tx_count}/{entry.rx_count}"
                    ),
                )
            )
            break  # one node is a repro; don't spam N findings

    totals = ledger.totals()
    if totals["tx_total"] != float(result.messages.transmissions):
        violations.append(
            Violation(
                kind="differential:energy",
                description=(
                    "transmit debits do not mirror message accounting: "
                    f"tx_total {totals['tx_total']} != transmissions "
                    f"{result.messages.transmissions}"
                ),
            )
        )
    if totals["rx_total"] != float(result.messages.deliveries):
        violations.append(
            Violation(
                kind="differential:energy",
                description=(
                    "receive debits do not mirror delivered copies: "
                    f"rx_total {totals['rx_total']} != deliveries "
                    f"{result.messages.deliveries}"
                ),
            )
        )
    return violations


# ----------------------------------------------------------------------
# Directed forwarder-conformance probes
# ----------------------------------------------------------------------
def probe_forwarder_conformance(spec: ScenarioSpec) -> List[Violation]:
    """Drive a forwarder through the rare paths and replay the trace.

    Three seeded probes on a tiny synthetic medium:

    1. **merged duties**: two local updates with disjoint news toward the
       same destination while the first timer is in flight -- the re-armed
       watch must keep covering the first update's failures;
    2. **inbound retry**: a foreign update starts a duty toward our own
       CH which is never acknowledged -- every retry wait must follow the
       *origin* boundary's BGW ladder, not another boundary's;
    3. **origin watch**: a CH's multi-failure watch acknowledged by two
       partial overheard reports -- coverage must accumulate (a lone
       superset match would rebroadcast spuriously).

    The recorded events go through the same
    :func:`~repro.audit.invariants.audit_forwarder_conformance` model as
    end-to-end traces, so a reintroduced forwarding bug fails here even
    when the random topology never exercises it.
    """
    rng = np.random.default_rng(spec.seed)
    config = spec.fds_config()
    ids = [int(x) for x in rng.permutation(np.arange(10, 90))[:8]]
    my_id, my_head, peer_b, peer_c, f1, f2, f3, _spare = ids
    violations: List[Violation] = []

    def fresh_node() -> Tuple[Simulator, SimNode, RecordingTracer]:
        sim = Simulator()
        tracer = RecordingTracer()
        medium = RadioMedium(
            sim, transmission_range=100.0, max_delay=0.01, tracer=tracer
        )
        node = SimNode(my_id, Vec2(0, 0), sim, medium)
        for i, other in enumerate((my_head, peer_b, peer_c)):
            SimNode(other, Vec2(5000.0 + 300.0 * i, 5000.0), sim, medium)
        return sim, node, tracer

    def forwarder(node: SimNode, duties, head_boundaries=()):
        return InterclusterForwarder(
            node,
            config,
            duties=dict(duties),
            head_boundaries=dict(head_boundaries),
            get_head=lambda: my_head,
            get_history=lambda: frozenset(),
            rebroadcast_update=lambda: None,
        )

    def run_probe(name: str, drive: Callable[[Simulator, SimNode], None]) -> None:
        sim, node, tracer = fresh_node()
        drive(sim, node)
        sim.run()
        violations.extend(
            Violation(kind=f"probe:{name}", description=v.description)
            for v in audit_violations(
                spec, _ProbeResult(tracer, config), f"probe:{name}"
            )
            if v.kind == "audit:forwarder-conformance"
        )

    # The ladder check needs the *other* boundary to be the longer one,
    # or taking max() over all duties would coincide with the right answer.
    n_b = int(rng.integers(0, 3))
    n_c = n_b + 1 + int(rng.integers(0, 2))

    def drive_merge(sim: Simulator, node: SimNode) -> None:
        fwd = forwarder(node, {peer_b: (0, n_b)})
        fwd.on_local_update(
            HealthStatusUpdate(
                head=my_head, execution=1, new_failures=frozenset({f1})
            )
        )
        # Second report lands mid-flight, before the first ack window ends.
        sim.schedule_in(
            config.thop,
            lambda: fwd.on_local_update(
                HealthStatusUpdate(
                    head=my_head, execution=1, new_failures=frozenset({f2})
                )
            ),
        )

    def drive_inbound(sim: Simulator, node: SimNode) -> None:
        fwd = forwarder(node, {peer_b: (0, n_b), peer_c: (0, n_c)})
        fwd.on_foreign_update(
            HealthStatusUpdate(
                head=peer_b, execution=1, new_failures=frozenset({f3})
            )
        )

    def drive_origin(sim: Simulator, node: SimNode) -> None:
        fwd = forwarder(
            node, {}, head_boundaries={peer_b: 1, peer_c: 1}
        )
        update = HealthStatusUpdate(
            head=my_id, execution=1, new_failures=frozenset({f1, f2})
        )
        fwd._get_head = lambda: my_id  # probe plays the CH itself
        fwd.on_local_update(update)
        for covered in (frozenset({f1}), frozenset({f2})):
            fwd.on_overheard_report(
                FailureReport(
                    sender=peer_b,
                    origin=my_id,
                    target_head=peer_c,
                    failures=covered,
                )
            )

    run_probe("merged-duties", drive_merge)
    run_probe("inbound-retry", drive_inbound)
    run_probe("origin-watch", drive_origin)
    return violations


class _ProbeResult:
    """Just enough of a ScenarioResult for :func:`audit_violations`."""

    def __init__(self, tracer: RecordingTracer, config: FdsConfig) -> None:
        self.tracer = tracer
        self.config = _ProbeConfig(config)
        self.crash_times: dict = {}


class _ProbeConfig:
    def __init__(self, fds: FdsConfig) -> None:
        self.fds = fds


# ----------------------------------------------------------------------
# The differential check
# ----------------------------------------------------------------------
def check_spec(
    spec: ScenarioSpec,
    check_parallel: bool = True,
    check_probes: bool = True,
    check_array: bool = True,
    check_formation: bool = True,
) -> List[Violation]:
    """Run every paired configuration and oracle; return all violations.

    ``check_parallel=False`` skips the process-pool pair (needed when the
    code under test is monkeypatched -- patches do not cross process
    boundaries).  ``check_probes=False`` skips the directed forwarder
    probes (used by the shrinker, whose violations are end-to-end).
    ``check_array=False`` skips the array-engine equivalence pair.
    ``check_formation=False`` skips the distributed-formation pair.
    """
    violations: List[Violation] = []

    base = run_scenario(spec.to_config(vectorized=True))
    scalar = run_scenario(spec.to_config(vectorized=False))
    base_fp = trace_fingerprint(base.tracer)
    if base_fp != trace_fingerprint(scalar.tracer):
        violations.append(
            Violation(
                kind="differential:vectorized",
                description=(
                    "vectorized and scalar medium paths diverged on "
                    "identical seeds (traces not bit-identical)"
                ),
            )
        )

    if check_parallel:
        serial = run_scenario_summaries([spec.to_config()], workers=1)
        pooled = run_scenario_summaries([spec.to_config()], workers=2)
        if serial != pooled:
            violations.append(
                Violation(
                    kind="differential:parallel",
                    description=(
                        "parallel experiment fabric produced a different "
                        f"summary than the serial run: {pooled} != {serial}"
                    ),
                )
            )

    ablated = run_scenario(spec.to_config(use_digests=False))

    violations.extend(completeness_violations(spec, base))
    violations.extend(accuracy_violations(spec, base))
    violations.extend(audit_violations(spec, base, "base"))
    violations.extend(audit_violations(spec, scalar, "scalar"))
    violations.extend(audit_violations(spec, ablated, "no-digests"))
    if check_array:
        violations.extend(array_engine_violations(spec, base))
    if check_formation:
        violations.extend(formation_violations(spec))
    if check_probes:
        violations.extend(probe_forwarder_conformance(spec))
    return violations


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_spec(
    spec: ScenarioSpec,
    check_parallel: bool = True,
    max_evals: int = 32,
    still_fails: Optional[Callable[[ScenarioSpec], bool]] = None,
) -> ScenarioSpec:
    """Greedily reduce a failing spec while it keeps failing.

    Each pass tries one simplification (fewer executions, clusters,
    members, crashes; smaller drop budget; perfect links; fewer backups)
    and keeps it if the spec still produces *any* violation.  Bounded by
    ``max_evals`` full re-checks, so shrinking a pathological spec cannot
    run away.
    """
    if still_fails is None:

        def still_fails(candidate: ScenarioSpec) -> bool:
            return bool(check_spec(candidate, check_parallel=check_parallel))

    evals = 0

    def attempt(candidate: ScenarioSpec) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return still_fails(candidate)

    current = spec
    passes: Sequence[Callable[[ScenarioSpec], Optional[ScenarioSpec]]] = (
        lambda s: replace(s, executions=s.executions - 1)
        if s.executions > 3
        else None,
        lambda s: replace(s, cluster_count=s.cluster_count - 1)
        if s.cluster_count > 2
        else None,
        lambda s: replace(
            s, members_per_cluster=max(4, (3 * s.members_per_cluster) // 4)
        )
        if s.members_per_cluster > 4
        else None,
        lambda s: replace(s, crash_count=s.crash_count - 1)
        if s.crash_count > 0
        else None,
        lambda s: replace(s, loss_budget=s.loss_budget - 1)
        if s.loss_kind == "bounded" and s.loss_budget > 0
        else None,
        lambda s: replace(s, loss_kind="perfect")
        if s.loss_kind != "perfect"
        else None,
        lambda s: replace(s, max_backups=s.max_backups - 1)
        if s.max_backups > 0
        else None,
    )
    progress = True
    while progress and evals < max_evals:
        progress = False
        for simplify in passes:
            candidate = simplify(current)
            if candidate is not None and attempt(candidate):
                current = candidate
                progress = True
    return current


def repro_snippet(spec: ScenarioSpec, violations: Sequence[Violation]) -> str:
    """A ready-to-paste pytest case reproducing the violations."""
    lines = [f"    #   - {v.kind}: {v.description}" for v in violations]
    fields = ", ".join(
        f"{name}={getattr(spec, name)!r}"
        for name in (
            "seed",
            "cluster_count",
            "members_per_cluster",
            "crash_count",
            "executions",
            "loss_kind",
            "loss_p",
            "loss_budget",
            "spacing_factor",
            "max_backups",
            "phi",
            "thop",
        )
    )
    body = "\n".join(lines) if lines else "    #   (violations list was empty)"
    return (
        "from repro.audit.differential import ScenarioSpec, check_spec\n"
        "\n"
        "\n"
        "def test_soak_regression():\n"
        "    # Shrunk from a failing soak run; observed violations:\n"
        f"{body}\n"
        f"    spec = ScenarioSpec({fields})\n"
        "    assert check_spec(spec) == []\n"
    )
