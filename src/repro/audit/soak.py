"""Randomized differential soak: sample specs, check, shrink, report.

The soak loop is the repo's standing conformance gate: each iteration
draws a seeded :class:`~repro.audit.differential.ScenarioSpec` from the
soak distribution and puts it through every paired configuration and
oracle in :func:`~repro.audit.differential.check_spec`.  A violation is
shrunk to a minimal spec and rendered as a ready-to-paste pytest case, so
a CI soak failure arrives as a regression test, not a stack trace.

Bounded runs (``repro soak --iterations N``) gate CI; the scheduled
long-soak workflow runs the same loop for many more iterations and
uploads any repro files as artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.audit.differential import (
    ScenarioSpec,
    Violation,
    check_spec,
    random_spec,
    repro_snippet,
    shrink_spec,
)


@dataclass(frozen=True)
class SoakOptions:
    """Knobs for one soak run."""

    iterations: int = 10
    seed: int = 0
    #: Where to write ``soak_repro_*.py`` files for violations (optional).
    out_dir: Optional[Path] = None
    #: Skip the process-pool differential pair (e.g. under monkeypatches).
    check_parallel: bool = True
    #: Re-check budget for the shrinker, per violation.
    max_shrink_evals: int = 24
    #: Stop after this many violating specs (0 = never stop early).
    max_violations: int = 1


@dataclass(frozen=True)
class SoakViolation:
    """One failing iteration, shrunk and rendered."""

    spec: ScenarioSpec
    shrunk: ScenarioSpec
    violations: Tuple[Violation, ...]
    snippet: str
    repro_path: Optional[Path] = None


@dataclass
class SoakResult:
    """Outcome of a soak run."""

    iterations: int = 0
    elapsed: float = 0.0
    failures: List[SoakViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures


def soak_iteration(
    spec: ScenarioSpec,
    check_parallel: bool = True,
    max_shrink_evals: int = 24,
) -> Optional[SoakViolation]:
    """Check one spec; on violation, shrink it and render the repro."""
    violations = check_spec(spec, check_parallel=check_parallel)
    if not violations:
        return None
    shrunk = shrink_spec(
        spec, check_parallel=check_parallel, max_evals=max_shrink_evals
    )
    final = check_spec(shrunk, check_parallel=check_parallel)
    if not final:
        # Shrinking is best-effort: if a reduction pass landed on a spec
        # that no longer fails (flaky boundary), fall back to the original.
        shrunk, final = spec, violations
    return SoakViolation(
        spec=spec,
        shrunk=shrunk,
        violations=tuple(final),
        snippet=repro_snippet(shrunk, final),
    )


def run_soak(
    options: SoakOptions,
    log: Optional[callable] = None,
) -> SoakResult:
    """Run the soak loop; returns every (shrunk) violation found.

    ``log`` receives one human-readable line per iteration when given
    (the CLI passes ``print``; tests pass nothing).
    """
    rng = np.random.default_rng(options.seed)
    result = SoakResult()
    started = time.monotonic()
    for index in range(options.iterations):
        spec = random_spec(rng)
        failure = soak_iteration(
            spec,
            check_parallel=options.check_parallel,
            max_shrink_evals=options.max_shrink_evals,
        )
        result.iterations = index + 1
        if log is not None:
            verdict = "VIOLATION" if failure else "ok"
            log(
                f"[soak {index + 1}/{options.iterations}] seed={spec.seed} "
                f"clusters={spec.cluster_count} loss={spec.loss_kind} "
                f"crashes={spec.crash_count}: {verdict}"
            )
        if failure is not None:
            if options.out_dir is not None:
                options.out_dir.mkdir(parents=True, exist_ok=True)
                path = options.out_dir / f"soak_repro_{spec.seed}.py"
                path.write_text(failure.snippet, encoding="utf-8")
                failure = SoakViolation(
                    spec=failure.spec,
                    shrunk=failure.shrunk,
                    violations=failure.violations,
                    snippet=failure.snippet,
                    repro_path=path,
                )
                if log is not None:
                    log(f"  repro written to {path}")
            result.failures.append(failure)
            if (
                options.max_violations
                and len(result.failures) >= options.max_violations
            ):
                break
    result.elapsed = time.monotonic() - started
    return result
