"""Randomized differential soak: sample specs, check, shrink, report.

The soak loop is the repo's standing conformance gate: each iteration
draws a seeded :class:`~repro.audit.differential.ScenarioSpec` from the
soak distribution and puts it through every paired configuration and
oracle in :func:`~repro.audit.differential.check_spec`.  A violation is
shrunk to a minimal spec and rendered as a ready-to-paste pytest case, so
a CI soak failure arrives as a regression test, not a stack trace.

Bounded runs (``repro soak --iterations N``) gate CI; the scheduled
long-soak workflow runs the same loop for many more iterations and
uploads any repro files as artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.audit.differential import (
    ScenarioSpec,
    Violation,
    check_spec,
    random_spec,
    repro_snippet,
    shrink_spec,
)


@dataclass(frozen=True)
class SoakOptions:
    """Knobs for one soak run."""

    iterations: int = 10
    seed: int = 0
    #: Where to write ``soak_repro_*.py`` files for violations (optional).
    out_dir: Optional[Path] = None
    #: Skip the process-pool differential pair (e.g. under monkeypatches).
    check_parallel: bool = True
    #: Re-check budget for the shrinker, per violation.
    max_shrink_evals: int = 24
    #: Stop after this many violating specs (0 = never stop early).
    max_violations: int = 1
    #: Root of a :class:`repro.campaign.store.ResultStore` to cache
    #: per-spec verdicts in.  A rerun (or the scheduled soak workflow
    #: reusing a cached store) replays already-checked specs instead of
    #: re-simulating them; keys embed the code fingerprint, so any
    #: library change invalidates the cached verdicts wholesale.
    store_root: Optional[Path] = None


@dataclass(frozen=True)
class SoakViolation:
    """One failing iteration, shrunk and rendered."""

    spec: ScenarioSpec
    shrunk: ScenarioSpec
    violations: Tuple[Violation, ...]
    snippet: str
    repro_path: Optional[Path] = None


@dataclass
class SoakResult:
    """Outcome of a soak run."""

    iterations: int = 0
    elapsed: float = 0.0
    failures: List[SoakViolation] = field(default_factory=list)
    #: Iterations served from the result store instead of re-simulated.
    cache_hits: int = 0
    #: Whether the loop was cut short by SIGINT (partial results stand).
    interrupted: bool = False

    @property
    def clean(self) -> bool:
        return not self.failures


def soak_iteration(
    spec: ScenarioSpec,
    check_parallel: bool = True,
    max_shrink_evals: int = 24,
) -> Optional[SoakViolation]:
    """Check one spec; on violation, shrink it and render the repro."""
    violations = check_spec(spec, check_parallel=check_parallel)
    if not violations:
        return None
    shrunk = shrink_spec(
        spec, check_parallel=check_parallel, max_evals=max_shrink_evals
    )
    final = check_spec(shrunk, check_parallel=check_parallel)
    if not final:
        # Shrinking is best-effort: if a reduction pass landed on a spec
        # that no longer fails (flaky boundary), fall back to the original.
        shrunk, final = spec, violations
    return SoakViolation(
        spec=spec,
        shrunk=shrunk,
        violations=tuple(final),
        snippet=repro_snippet(shrunk, final),
    )


def _spec_cache_key(spec: ScenarioSpec, options: SoakOptions) -> str:
    from dataclasses import asdict

    from repro.campaign.store import content_key

    return content_key(
        "soak_iteration",
        {
            "spec": asdict(spec),
            "check_parallel": options.check_parallel,
            "max_shrink_evals": options.max_shrink_evals,
        },
    )


def _cached_verdict(payload: dict, spec: ScenarioSpec) -> Optional[SoakViolation]:
    if not payload["violations"]:
        return None
    return SoakViolation(
        spec=spec,
        shrunk=ScenarioSpec(**payload["shrunk"]),
        violations=tuple(
            Violation(kind=v["kind"], description=v["description"])
            for v in payload["violations"]
        ),
        snippet=payload["snippet"],
    )


def _verdict_payload(failure: Optional[SoakViolation]) -> dict:
    from dataclasses import asdict

    if failure is None:
        return {"violations": []}
    return {
        "violations": [asdict(v) for v in failure.violations],
        "shrunk": asdict(failure.shrunk),
        "snippet": failure.snippet,
    }


def run_soak(
    options: SoakOptions,
    log: Optional[callable] = None,
) -> SoakResult:
    """Run the soak loop; returns every (shrunk) violation found.

    ``log`` receives one human-readable line per iteration when given
    (the CLI passes ``print``; tests pass nothing).  With a
    ``store_root``, each spec's verdict is cached content-addressed --
    a rerun over the same seed range replays instead of re-simulating --
    and a ``KeyboardInterrupt`` ends the loop cleanly with every
    finished iteration already persisted.
    """
    store = None
    if options.store_root is not None:
        from repro.campaign.store import ResultStore

        store = ResultStore(options.store_root)
    rng = np.random.default_rng(options.seed)
    result = SoakResult()
    started = time.monotonic()
    for index in range(options.iterations):
        spec = random_spec(rng)
        key = _spec_cache_key(spec, options) if store is not None else None
        cached = store.get(key) if store is not None else None
        if cached is not None:
            failure = _cached_verdict(cached, spec)
            result.cache_hits += 1
        else:
            try:
                failure = soak_iteration(
                    spec,
                    check_parallel=options.check_parallel,
                    max_shrink_evals=options.max_shrink_evals,
                )
            except KeyboardInterrupt:
                # Finished iterations are already durable (store writes
                # are atomic, repro files land per-iteration); stop the
                # loop and report partial progress instead of dying.
                result.interrupted = True
                break
            if store is not None:
                store.put(key, _verdict_payload(failure), kind="soak_iteration")
        result.iterations = index + 1
        if log is not None:
            verdict = "VIOLATION" if failure else "ok"
            if cached is not None:
                verdict += " (cached)"
            log(
                f"[soak {index + 1}/{options.iterations}] seed={spec.seed} "
                f"clusters={spec.cluster_count} loss={spec.loss_kind} "
                f"crashes={spec.crash_count}: {verdict}"
            )
        if failure is not None:
            if options.out_dir is not None:
                options.out_dir.mkdir(parents=True, exist_ok=True)
                path = options.out_dir / f"soak_repro_{spec.seed}.py"
                path.write_text(failure.snippet, encoding="utf-8")
                failure = SoakViolation(
                    spec=failure.spec,
                    shrunk=failure.shrunk,
                    violations=failure.violations,
                    snippet=failure.snippet,
                    repro_path=path,
                )
                if log is not None:
                    log(f"  repro written to {path}")
            result.failures.append(failure)
            if (
                options.max_violations
                and len(result.failures) >= options.max_violations
            ):
                break
    result.elapsed = time.monotonic() - started
    return result
