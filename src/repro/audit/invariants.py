"""Trace audits: check a finished run against protocol invariants.

Tests assert on *outcomes*; audits assert on *behaviour along the way*,
from the recorded trace alone.  Each audit returns the violations it
found (empty list = clean), so they compose into CI gates and can also
triage exploratory runs.

Invariants audited:

- **crash silence** (fail-stop, Section 2.2): a crashed node transmits
  nothing after its crash instant;
- **detection timing**: detection events occur only at R-3 / end-of-R-3
  instants of some execution (the rules run nowhere else);
- **refutation soundness**: every refutation names a node that was
  actually suspected at that moment (no spurious repairs);
- **round structure**: per (node, execution), R-1 heartbeat activity
  precedes R-2 digest activity precedes the R-3 update -- checked via
  event times against the configured round offsets;
- **forwarder conformance**: inter-cluster forwarding events replayed
  against a reference model of Section 4.3's retry-coverage, BGW-ladder,
  and origin-watch rules (see :func:`audit_forwarder_conformance`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.sim.trace import RecordingTracer
from repro.types import NodeId, SimTime


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation discovered in a trace."""

    audit: str
    time: SimTime
    node: Optional[int]
    description: str


@dataclass(frozen=True)
class AuditStatus:
    """Outcome of one audit over a trace.

    ``applicable=False`` means the audit could not judge this run at all
    (e.g. the round-structure check when the configured allowance covers
    the whole heartbeat interval); consumers that treat "no findings" as
    "clean" must distinguish that from "not checked".
    """

    audit: str
    applicable: bool
    findings: Tuple[AuditFinding, ...]
    note: str = ""

    @property
    def clean(self) -> bool:
        """Checked and found nothing (``False`` when not applicable)."""
        return self.applicable and not self.findings


def audit_crash_silence(
    tracer: RecordingTracer,
    crash_times: Mapping[NodeId, SimTime],
) -> List[AuditFinding]:
    """No ``radio.tx`` by a node after its crash instant."""
    findings: List[AuditFinding] = []
    deadline = {int(nid): t for nid, t in crash_times.items()}
    for record in tracer.iter_kind("radio.tx"):
        if record.node in deadline and record.time > deadline[record.node]:
            findings.append(
                AuditFinding(
                    audit="crash-silence",
                    time=record.time,
                    node=record.node,
                    description=(
                        f"node {record.node} transmitted at t={record.time:.3f}"
                        f" after crashing at t={deadline[record.node]:.3f}"
                    ),
                )
            )
    return findings


def audit_detection_timing(
    tracer: RecordingTracer,
    config: FdsConfig,
    fds_start: float = 0.0,
    tolerance: float = 1e-6,
) -> List[AuditFinding]:
    """Detections happen only at R-3 or end-of-R-3 round boundaries."""
    findings: List[AuditFinding] = []
    legal_offsets = (2.0 * config.thop, 3.0 * config.thop)
    for record in tracer.iter_kind(ev.DETECTION):
        phase = math.fmod(record.time - fds_start, config.phi)
        if not any(abs(phase - off) <= tolerance for off in legal_offsets):
            findings.append(
                AuditFinding(
                    audit="detection-timing",
                    time=record.time,
                    node=record.node,
                    description=(
                        f"detection at interval offset {phase:.4f}, expected "
                        f"one of {legal_offsets}"
                    ),
                )
            )
    return findings


def audit_refutation_soundness(tracer: RecordingTracer) -> List[AuditFinding]:
    """Each refutation at a node follows a matching suspicion there.

    Reconstructs each node's suspicion set from its own detection /
    update-application ordering is not possible from the compact trace, so
    the audit checks the necessary condition that *somebody* announced the
    target failed before anyone refutes it.
    """
    findings: List[AuditFinding] = []
    suspected_since: Dict[int, SimTime] = {}
    for record in tracer.records:
        if record.kind == ev.DETECTION:
            target = int(record.detail["target"])
            suspected_since.setdefault(target, record.time)
        elif record.kind == ev.REFUTATION:
            target = int(record.detail["target"])
            if target not in suspected_since:
                findings.append(
                    AuditFinding(
                        audit="refutation-soundness",
                        time=record.time,
                        node=record.node,
                        description=(
                            f"refutation of {target} with no prior "
                            "detection anywhere"
                        ),
                    )
                )
            elif record.time < suspected_since[target]:
                findings.append(
                    AuditFinding(
                        audit="refutation-soundness",
                        time=record.time,
                        node=record.node,
                        description=(
                            f"refutation of {target} precedes its first "
                            "detection"
                        ),
                    )
                )
    return findings


def round_structure_allowance(config: FdsConfig) -> float:
    """The per-interval active window the round-structure audit permits.

    Covers R-1..R-3, the recovery window, and the worst-case BGW ladder:
    ``3*Thop + (max_retries + 1) * (n_max + 1) * 2*Thop`` with a generous
    ``n_max`` of 4.
    """
    return (
        3.0 * config.thop
        + config.recovery_rounds * config.thop
        + (config.max_forward_retries + 1) * 5 * config.implicit_ack_window
    )


def round_structure_applicable(config: FdsConfig) -> bool:
    """Whether the round-structure audit can judge runs of this config.

    When the allowance reaches ``phi`` the whole interval is legitimately
    active and the audit has no silent tail to police -- it is *not
    applicable*, which is different from a run auditing clean.

    The audit also abstains from digest-free configurations with
    inter-cluster forwarding enabled.  Without digest witnesses every
    lost heartbeat becomes a false detection, and the resulting relay /
    refutation-repair traffic *chains* forwarding generations (relay ->
    fresh gateway duty -> forwarded report -> relay ...): each link in
    the chain is individually ladder-conformant (the forwarder audit
    still polices that), but the chain's depth is set by the cluster
    topology and the loss realisation, not by anything in this config,
    so no single-generation window short of ``phi`` is a sound claim
    there.
    """
    if config.intercluster_forwarding and not config.use_digests:
        return False
    return round_structure_allowance(config) < config.phi


def audit_round_structure(
    tracer: RecordingTracer,
    config: FdsConfig,
    fds_start: float = 0.0,
) -> List[AuditFinding]:
    """All radio activity lands inside an execution's active window.

    The FDS (plus its recovery mechanisms) occupies the first
    ``execution_duration + post-forward chatter`` of each interval; a
    transmission in the silent tail indicates a runaway timer.  Returns no
    findings when :func:`round_structure_applicable` is false; callers that
    need to distinguish "clean" from "not checked" should consult
    :func:`run_audit_statuses` instead.
    """
    findings: List[AuditFinding] = []
    allowance = round_structure_allowance(config)
    if not round_structure_applicable(config):
        return findings  # the whole interval is legitimately active
    for record in tracer.iter_kind("radio.tx"):
        if record.time < fds_start:
            continue
        phase = math.fmod(record.time - fds_start, config.phi)
        if phase > allowance + 1e-9:
            findings.append(
                AuditFinding(
                    audit="round-structure",
                    time=record.time,
                    node=record.node,
                    description=(
                        f"transmission at interval offset {phase:.3f}, past "
                        f"the active window ({allowance:.3f})"
                    ),
                )
            )
    return findings


def audit_forwarder_conformance(
    tracer: RecordingTracer,
    config: FdsConfig,
    tolerance: float = 1e-9,
) -> List[AuditFinding]:
    """Replay inter-cluster forwarding events against a reference model.

    The :class:`~repro.fds.intercluster.InterclusterForwarder` traces every
    duty start, timer arm, overheard acknowledgment, and origin-watch step.
    This audit replays those events through an independent model of the
    paper's Section 4.3 rules and flags three classes of divergence:

    - **retry coverage**: a re-armed timer toward a destination must still
      watch every failure the previous timer watched, minus those since
      acknowledged or retry-budget-exhausted (a duty arriving mid-flight
      may *add* failures, never drop them);
    - **retry wait**: a forwarder's armed delay must match the BGW ladder
      of the boundary the duty crossed -- ``rank * 2*Thop`` for standby,
      ``(n + 1) * 2*Thop`` for the post-forward wait, with ``rank``/``n``
      taken from that (destination, origin) duty, not some other boundary;
    - **origin watch**: the originating CH must track overheard forwarder
      coverage cumulatively; a rebroadcast whose pending set disagrees
      with the union of overheard reports is either spurious (everything
      was covered) or mis-accounted.
    """
    findings: List[AuditFinding] = []
    max_attempts = config.max_forward_retries + 1
    # Per-node model state, keyed by the tracing node id.
    duties: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
    watched: Dict[Tuple[int, int], Set[int]] = {}
    acked: Dict[Tuple[int, int], Set[int]] = {}
    attempts: Dict[Tuple[int, int, int], int] = {}
    origin_pending: Dict[int, Set[int]] = {}

    def _bad(record, description: str) -> None:
        findings.append(
            AuditFinding(
                audit="forwarder-conformance",
                time=record.time,
                node=record.node,
                description=description,
            )
        )

    for record in tracer.records:
        kind = record.kind
        node = record.node
        detail = record.detail
        if kind == ev.INTER_ACK:
            key = (node, int(detail["peer"]))
            acked.setdefault(key, set()).update(
                int(f) for f in detail["covered"]
            )
        elif kind == ev.INTER_DUTY:
            duties[(node, int(detail["dest"]), int(detail["origin"]))] = (
                int(detail["rank"]),
                int(detail["backup_count"]),
            )
        elif kind == ev.INTER_RENAMED:
            old, new = int(detail["old"]), int(detail["new"])
            for key in [k for k in duties if k[0] == node and old in k[1:]]:
                _node, dest, origin = key
                dest = new if dest == old else dest
                origin = new if origin == old else origin
                duties[(node, dest, origin)] = duties.pop(key)
        elif kind == ev.REPORT_FORWARDED:
            dest = int(detail["peer"])
            for f in detail["failures"]:
                akey = (node, dest, int(f))
                attempts[akey] = attempts.get(akey, 0) + 1
        elif kind == ev.INTER_ARM:
            dest = int(detail["dest"])
            origin = int(detail["origin"])
            armed = {int(f) for f in detail["failures"]}
            prev = watched.get((node, dest), set())
            exhausted = {
                f
                for f in prev
                if attempts.get((node, dest, f), 0) >= max_attempts
            }
            required = prev - acked.get((node, dest), set()) - exhausted
            dropped = required - armed
            if dropped:
                _bad(
                    record,
                    f"re-armed timer toward {dest} dropped retry coverage "
                    f"of still-pending failures {sorted(dropped)}",
                )
            watched[(node, dest)] = armed
            duty = duties.get((node, dest, origin))
            if duty is not None:
                rank, backup_count = duty
                if detail["standby"]:
                    expected = config.bgw_standby(rank)
                else:
                    expected = config.post_forward_wait(backup_count)
                delay = float(detail["delay"])
                if abs(delay - expected) > tolerance:
                    _bad(
                        record,
                        f"armed wait {delay:.3f} toward {dest} (origin "
                        f"{origin}) does not match that boundary's ladder "
                        f"({expected:.3f})",
                    )
        elif kind == ev.INTER_RELEASE:
            watched.pop((node, int(detail["dest"])), None)
        elif kind == ev.ORIGIN_WATCH:
            origin_pending[node] = {int(f) for f in detail["failures"]}
        elif kind == ev.ORIGIN_COVERED:
            origin_pending.get(node, set()).difference_update(
                int(f) for f in detail["covered"]
            )
        elif kind == ev.ORIGIN_REBROADCAST:
            model = origin_pending.get(node, set())
            if not model:
                _bad(
                    record,
                    "origin rebroadcast although overheard forwarder "
                    "reports already covered every watched failure",
                )
            elif {int(f) for f in detail["pending"]} != model:
                _bad(
                    record,
                    f"origin rebroadcast pending {detail['pending']} "
                    f"disagrees with overheard coverage (expected "
                    f"{sorted(model)})",
                )
    return findings


def run_audit_statuses(
    tracer: RecordingTracer,
    config: FdsConfig,
    crash_times: Optional[Mapping[NodeId, SimTime]] = None,
    fds_start: float = 0.0,
) -> List[AuditStatus]:
    """Every audit with its applicability made explicit.

    Unlike :func:`run_all_audits`, a skipped audit shows up as
    ``applicable=False`` with a note saying why, so a conformance gate can
    tell "checked and clean" apart from "silently skipped".
    """
    statuses: List[AuditStatus] = []
    if crash_times:
        statuses.append(
            AuditStatus(
                audit="crash-silence",
                applicable=True,
                findings=tuple(audit_crash_silence(tracer, crash_times)),
            )
        )
    else:
        statuses.append(
            AuditStatus(
                audit="crash-silence",
                applicable=False,
                findings=(),
                note="no crash schedule supplied",
            )
        )
    statuses.append(
        AuditStatus(
            audit="detection-timing",
            applicable=True,
            findings=tuple(audit_detection_timing(tracer, config, fds_start)),
        )
    )
    statuses.append(
        AuditStatus(
            audit="refutation-soundness",
            applicable=True,
            findings=tuple(audit_refutation_soundness(tracer)),
        )
    )
    if config.intercluster_forwarding:
        statuses.append(
            AuditStatus(
                audit="forwarder-conformance",
                applicable=True,
                findings=tuple(audit_forwarder_conformance(tracer, config)),
            )
        )
    else:
        statuses.append(
            AuditStatus(
                audit="forwarder-conformance",
                applicable=False,
                findings=(),
                note="intercluster forwarding disabled",
            )
        )
    if round_structure_applicable(config):
        statuses.append(
            AuditStatus(
                audit="round-structure",
                applicable=True,
                findings=tuple(
                    audit_round_structure(tracer, config, fds_start)
                ),
            )
        )
    else:
        if config.intercluster_forwarding and not config.use_digests:
            note = (
                "digest-free configuration: relay/refutation-repair "
                "traffic legitimately chains forwarding generations "
                "past any single-ladder window"
            )
        else:
            note = (
                f"allowance {round_structure_allowance(config):.3f} >= "
                f"phi {config.phi:.3f}: whole interval legitimately active"
            )
        statuses.append(
            AuditStatus(
                audit="round-structure",
                applicable=False,
                findings=(),
                note=note,
            )
        )
    return statuses


def run_all_audits(
    tracer: RecordingTracer,
    config: FdsConfig,
    crash_times: Optional[Mapping[NodeId, SimTime]] = None,
    fds_start: float = 0.0,
) -> List[AuditFinding]:
    """Every audit; returns the concatenated findings (empty = clean)."""
    findings: List[AuditFinding] = []
    for status in run_audit_statuses(tracer, config, crash_times, fds_start):
        findings.extend(status.findings)
    return findings
