"""Trace audits: check a finished run against protocol invariants.

Tests assert on *outcomes*; audits assert on *behaviour along the way*,
from the recorded trace alone.  Each audit returns the violations it
found (empty list = clean), so they compose into CI gates and can also
triage exploratory runs.

Invariants audited:

- **crash silence** (fail-stop, Section 2.2): a crashed node transmits
  nothing after its crash instant;
- **detection timing**: detection events occur only at R-3 / end-of-R-3
  instants of some execution (the rules run nowhere else);
- **refutation soundness**: every refutation names a node that was
  actually suspected at that moment (no spurious repairs);
- **round structure**: per (node, execution), R-1 heartbeat activity
  precedes R-2 digest activity precedes the R-3 update -- checked via
  event times against the configured round offsets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.sim.trace import RecordingTracer
from repro.types import NodeId, SimTime


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation discovered in a trace."""

    audit: str
    time: SimTime
    node: Optional[int]
    description: str


def audit_crash_silence(
    tracer: RecordingTracer,
    crash_times: Mapping[NodeId, SimTime],
) -> List[AuditFinding]:
    """No ``radio.tx`` by a node after its crash instant."""
    findings: List[AuditFinding] = []
    deadline = {int(nid): t for nid, t in crash_times.items()}
    for record in tracer.iter_kind("radio.tx"):
        if record.node in deadline and record.time > deadline[record.node]:
            findings.append(
                AuditFinding(
                    audit="crash-silence",
                    time=record.time,
                    node=record.node,
                    description=(
                        f"node {record.node} transmitted at t={record.time:.3f}"
                        f" after crashing at t={deadline[record.node]:.3f}"
                    ),
                )
            )
    return findings


def audit_detection_timing(
    tracer: RecordingTracer,
    config: FdsConfig,
    fds_start: float = 0.0,
    tolerance: float = 1e-6,
) -> List[AuditFinding]:
    """Detections happen only at R-3 or end-of-R-3 round boundaries."""
    findings: List[AuditFinding] = []
    legal_offsets = (2.0 * config.thop, 3.0 * config.thop)
    for record in tracer.iter_kind(ev.DETECTION):
        phase = math.fmod(record.time - fds_start, config.phi)
        if not any(abs(phase - off) <= tolerance for off in legal_offsets):
            findings.append(
                AuditFinding(
                    audit="detection-timing",
                    time=record.time,
                    node=record.node,
                    description=(
                        f"detection at interval offset {phase:.4f}, expected "
                        f"one of {legal_offsets}"
                    ),
                )
            )
    return findings


def audit_refutation_soundness(tracer: RecordingTracer) -> List[AuditFinding]:
    """Each refutation at a node follows a matching suspicion there.

    Reconstructs each node's suspicion set from its own detection /
    update-application ordering is not possible from the compact trace, so
    the audit checks the necessary condition that *somebody* announced the
    target failed before anyone refutes it.
    """
    findings: List[AuditFinding] = []
    suspected_since: Dict[int, SimTime] = {}
    for record in tracer.records:
        if record.kind == ev.DETECTION:
            target = int(record.detail["target"])
            suspected_since.setdefault(target, record.time)
        elif record.kind == ev.REFUTATION:
            target = int(record.detail["target"])
            if target not in suspected_since:
                findings.append(
                    AuditFinding(
                        audit="refutation-soundness",
                        time=record.time,
                        node=record.node,
                        description=(
                            f"refutation of {target} with no prior "
                            "detection anywhere"
                        ),
                    )
                )
            elif record.time < suspected_since[target]:
                findings.append(
                    AuditFinding(
                        audit="refutation-soundness",
                        time=record.time,
                        node=record.node,
                        description=(
                            f"refutation of {target} precedes its first "
                            "detection"
                        ),
                    )
                )
    return findings


def audit_round_structure(
    tracer: RecordingTracer,
    config: FdsConfig,
    fds_start: float = 0.0,
) -> List[AuditFinding]:
    """All radio activity lands inside an execution's active window.

    The FDS (plus its recovery mechanisms) occupies the first
    ``execution_duration + post-forward chatter`` of each interval; a
    transmission in the silent tail indicates a runaway timer.  The
    allowance covers the worst-case BGW ladder:
    ``3*Thop + (max_retries + 1) * (n_max + 1) * 2*Thop`` with a generous
    ``n_max`` of 4.
    """
    findings: List[AuditFinding] = []
    allowance = (
        3.0 * config.thop
        + config.recovery_rounds * config.thop
        + (config.max_forward_retries + 1) * 5 * config.implicit_ack_window
    )
    if allowance >= config.phi:
        return findings  # the whole interval is legitimately active
    for record in tracer.iter_kind("radio.tx"):
        if record.time < fds_start:
            continue
        phase = math.fmod(record.time - fds_start, config.phi)
        if phase > allowance + 1e-9:
            findings.append(
                AuditFinding(
                    audit="round-structure",
                    time=record.time,
                    node=record.node,
                    description=(
                        f"transmission at interval offset {phase:.3f}, past "
                        f"the active window ({allowance:.3f})"
                    ),
                )
            )
    return findings


def run_all_audits(
    tracer: RecordingTracer,
    config: FdsConfig,
    crash_times: Optional[Mapping[NodeId, SimTime]] = None,
    fds_start: float = 0.0,
) -> List[AuditFinding]:
    """Every audit; returns the concatenated findings (empty = clean)."""
    findings: List[AuditFinding] = []
    if crash_times:
        findings.extend(audit_crash_silence(tracer, crash_times))
    findings.extend(audit_detection_timing(tracer, config, fds_start))
    findings.extend(audit_refutation_soundness(tracer))
    findings.extend(audit_round_structure(tracer, config, fds_start))
    return findings
