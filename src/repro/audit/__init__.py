"""Runtime verification: audit recorded traces against protocol invariants,
and soak-test the whole stack with differential conformance runs."""

from repro.audit.differential import (
    ScenarioSpec,
    Violation,
    check_spec,
    probe_forwarder_conformance,
    random_spec,
    repro_snippet,
    shrink_spec,
    trace_fingerprint,
)
from repro.audit.invariants import (
    AuditFinding,
    AuditStatus,
    audit_crash_silence,
    audit_detection_timing,
    audit_forwarder_conformance,
    audit_refutation_soundness,
    audit_round_structure,
    run_all_audits,
    run_audit_statuses,
)

from repro.audit.realnet import (
    RealnetSuiteResult,
    RealnetVerdict,
    check_realnet,
    realnet_repro_snippet,
    realnet_spec,
    run_realnet_suite,
)

from repro.audit.soak import (
    SoakOptions,
    SoakResult,
    SoakViolation,
    run_soak,
    soak_iteration,
)

__all__ = [
    "RealnetSuiteResult",
    "RealnetVerdict",
    "check_realnet",
    "realnet_repro_snippet",
    "realnet_spec",
    "run_realnet_suite",
    "AuditFinding",
    "AuditStatus",
    "ScenarioSpec",
    "SoakOptions",
    "SoakResult",
    "SoakViolation",
    "Violation",
    "check_spec",
    "probe_forwarder_conformance",
    "random_spec",
    "repro_snippet",
    "run_soak",
    "shrink_spec",
    "soak_iteration",
    "trace_fingerprint",
    "audit_crash_silence",
    "audit_detection_timing",
    "audit_forwarder_conformance",
    "audit_refutation_soundness",
    "audit_round_structure",
    "run_all_audits",
    "run_audit_statuses",
]
