"""Runtime verification: audit recorded traces against protocol invariants."""

from repro.audit.invariants import (
    AuditFinding,
    audit_crash_silence,
    audit_detection_timing,
    audit_refutation_soundness,
    audit_round_structure,
    run_all_audits,
)

__all__ = [
    "AuditFinding",
    "audit_crash_silence",
    "audit_detection_timing",
    "audit_refutation_soundness",
    "audit_round_structure",
    "run_all_audits",
]
