"""Network-health monitoring from a vantage node's FDS state.

The monitor is strictly a *consumer*: it reads what the vantage node's
failure detection service already knows (its cumulative failure history
and membership beliefs) and never touches the radio.  The operations team
polls it after executions; when the believed-operational population drops
below the capacity threshold it emits a :class:`CapacityAdvisory` naming
how many replacements to deploy -- the maintenance-scheduling loop the
paper's introduction motivates (replenishment itself is feature F5:
dropped nodes subscribe by heartbeating unmarked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.errors import ConfigurationError
from repro.fds.service import FdsDeployment
from repro.types import NodeId, SimTime


@dataclass(frozen=True)
class HealthSnapshot:
    """The network's health as believed at the vantage node."""

    time: SimTime
    vantage: NodeId
    deployed: int
    believed_failed: FrozenSet[NodeId]

    @property
    def believed_operational(self) -> int:
        return self.deployed - len(self.believed_failed)

    @property
    def believed_loss_fraction(self) -> float:
        if self.deployed == 0:
            return 0.0
        return len(self.believed_failed) / self.deployed


@dataclass(frozen=True)
class CapacityAdvisory:
    """A maintenance recommendation: deploy this many replacements."""

    time: SimTime
    believed_operational: int
    threshold: int
    replacements_needed: int


class HealthMonitor:
    """Polls one vantage node's FDS view against a capacity threshold."""

    def __init__(
        self,
        deployment: FdsDeployment,
        vantage: NodeId,
        capacity_threshold: int,
        target_population: Optional[int] = None,
    ) -> None:
        if vantage not in deployment.protocols:
            raise ConfigurationError(f"vantage {vantage} has no FDS protocol")
        if capacity_threshold < 0:
            raise ConfigurationError("capacity_threshold must be >= 0")
        self.deployment = deployment
        self.vantage = vantage
        self.capacity_threshold = capacity_threshold
        #: Population maintenance restores to (default: the threshold).
        self.target_population = (
            target_population if target_population is not None
            else capacity_threshold
        )
        if self.target_population < capacity_threshold:
            raise ConfigurationError(
                "target_population must be >= capacity_threshold"
            )
        self.snapshots: List[HealthSnapshot] = []
        self.advisories: List[CapacityAdvisory] = []

    def poll(self) -> HealthSnapshot:
        """Take a snapshot; emit an advisory if below threshold."""
        protocol = self.deployment.protocols[self.vantage]
        snapshot = HealthSnapshot(
            time=self.deployment.network.sim.now,
            vantage=self.vantage,
            deployed=len(self.deployment.network.nodes),
            believed_failed=protocol.history.known,
        )
        self.snapshots.append(snapshot)
        if snapshot.believed_operational < self.capacity_threshold:
            advisory = CapacityAdvisory(
                time=snapshot.time,
                believed_operational=snapshot.believed_operational,
                threshold=self.capacity_threshold,
                replacements_needed=(
                    self.target_population - snapshot.believed_operational
                ),
            )
            self.advisories.append(advisory)
            return snapshot
        return snapshot

    @property
    def latest(self) -> Optional[HealthSnapshot]:
        return self.snapshots[-1] if self.snapshots else None

    def accuracy_against_truth(self) -> float:
        """Fraction of believed failures that are really crashed.

        Ground-truth check for experiments (the vantage node itself
        cannot compute this).  1.0 when nothing is believed failed.
        """
        latest = self.latest
        if latest is None or not latest.believed_failed:
            return 1.0
        crashed = set(self.deployment.network.crashed_ids())
        correct = sum(1 for nid in latest.believed_failed if nid in crashed)
        return correct / len(latest.believed_failed)
