"""Operations-team tooling (the paper's Section 1 use case).

"It is crucial that the operation team be kept updated on the network's
health.  Such information could offer early warnings of system failure
(e.g., a significant number of lost resources may suggest an imminent
system capacity exhaustion) and would aid in maintenance scheduling for
the deployment of additional resources."

:class:`~repro.ops.monitor.HealthMonitor` is exactly that consumer: it
reads the FDS state as seen from any vantage node (a base station is just
a node), tracks the believed-operational population against a capacity
threshold, and raises replenishment advisories.
"""

from repro.ops.monitor import CapacityAdvisory, HealthMonitor, HealthSnapshot

__all__ = ["HealthMonitor", "HealthSnapshot", "CapacityAdvisory"]
