"""Inter-cluster failure-report forwarding (Section 4.3).

A gateway (and each ranked backup gateway) lives in the lens-shaped overlap
of two cluster disks, so under promiscuous receiving it hears *both*
clusterheads.  It therefore serves the boundary in both directions:

- **outbound**: its own cluster's update carries news -> forward a
  :class:`~repro.fds.messages.FailureReport` to the peer CH;
- **inbound**: the peer CH's overheard update carries news -> forward the
  report to its *own* CH (which relays it into the cluster and onward).

Mechanisms implemented exactly as the paper specifies:

*Implicit acknowledgment* (Figure 3).  No explicit ACKs: the evidence that
a report reached a destination CH is overhearing that CH's subsequent
broadcast covering the reported failures (its relay).  A forwarder arms a
timer after transmitting and retransmits (bounded times) if no such
broadcast is overheard.

*BGW-assisted forwarding*.  On a boundary with ``n`` backup gateways, upon
learning a report must cross, the BGW of rank ``k`` arms a standby timer of
``k * 2*Thop``.  If by expiry the destination CH's acknowledgment has not
been overheard, the BGW forwards the report itself, then waits
``(n + 1) * 2*Thop`` before retrying.  The primary GW forwards immediately
and uses the same ``(n + 1) * 2*Thop`` wait, so GW and BGWs never collide.

*Origin watch*.  The originating CH arms a ``2*Thop`` timer after
broadcasting news; if it does not overhear any of its forwarders' reports,
it rebroadcasts the update (Figure 3's sender-side retransmission).

*No news is good news*.  Only updates carrying new failures (or a
takeover) trigger forwarding.

All acknowledgment state is per *destination head* in a
:class:`~repro.fds.reports.BoundaryLedger`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.fds import events as ev
from repro.obs.profiler import PHASE_FDS_INTERCLUSTER
from repro.fds.config import FdsConfig
from repro.fds.messages import FailureReport, HealthStatusUpdate
from repro.fds.reports import BoundaryLedger
from repro.fds.substrate import Substrate, TimerHandle
from repro.types import NodeId


class InterclusterForwarder:
    """Per-node forwarding duties across cluster boundaries.

    ``duties`` maps peer CH -> (my rank, boundary backup count ``n``);
    rank 0 is the primary GW.  ``head_boundaries`` (CH only) maps peer CH
    -> forwarder count, driving the origin-side watch.  ``get_head`` and
    ``get_history`` read the owning protocol's current cluster head and
    cumulative failure knowledge.
    """

    def __init__(
        self,
        node: Substrate,
        config: FdsConfig,
        duties: Mapping[NodeId, Tuple[int, int]],
        head_boundaries: Mapping[NodeId, int],
        get_head: Callable[[], NodeId],
        get_history: Callable[[], FrozenSet[NodeId]],
        rebroadcast_update: Callable[[], None],
    ) -> None:
        self._node = node
        self._config = config
        self.duties: Dict[NodeId, Tuple[int, int]] = dict(duties)
        self.head_boundaries: Dict[NodeId, int] = dict(head_boundaries)
        self._get_head = get_head
        self._get_history = get_history
        self._rebroadcast_update = rebroadcast_update
        self.ledger = BoundaryLedger()
        # destination head -> armed timer.
        self._timers: Dict[NodeId, TimerHandle] = {}
        #: destination head -> failures the armed timer is watching.  A
        #: second duty toward the same destination must *merge* into this
        #: set (not replace it), or the first report's failures silently
        #: lose their retry coverage.
        self._armed_failures: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._origin_timer: Optional[TimerHandle] = None
        self._origin_pending: FrozenSet[NodeId] = frozenset()
        self._origin_retries = 0
        # Counters for metrics.
        self.reports_sent = 0
        self.retransmissions = 0
        self.bgw_activations = 0
        self.origin_retransmissions = 0

    def _trace(self, kind: str, **detail: object) -> None:
        tracer = self._node.tracer
        if tracer.enabled:
            tracer.record(
                self._node.now, kind, node=int(self._node.node_id), **detail
            )

    @staticmethod
    def _ids(nodes: FrozenSet[NodeId]) -> list:
        return sorted(int(n) for n in nodes)

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------
    def on_local_update(self, update: HealthStatusUpdate) -> None:
        """Profiled entry point for :meth:`_handle_local_update`."""
        profiler = self._node.profiler
        if not profiler.enabled:
            self._handle_local_update(update)
            return
        t0 = perf_counter()
        try:
            self._handle_local_update(update)
        finally:
            profiler.add(PHASE_FDS_INTERCLUSTER, t0)

    def _handle_local_update(self, update: HealthStatusUpdate) -> None:
        """Our cluster's authority broadcast an update we (over)heard.

        Always records the update's coverage as acknowledgment for the
        *inbound* direction (our CH evidently knows these failures).  If
        the update carries news, GWs/BGWs start outbound duties toward
        every peer, and the originating CH starts its implicit-ack watch.
        """
        for refuted in update.refutations:
            self.ledger.clear_failure(refuted)
        covered = self._coverage_of(update) - update.refutations
        self.ledger.note_ack(self._get_head(), covered)
        if covered:
            self._trace(
                ev.INTER_ACK,
                peer=int(self._get_head()),
                covered=self._ids(covered),
            )
        if update.refutations:
            # Best-effort repair propagation: the primary GW relays the
            # refutation across each boundary once (no retry ladder -- a
            # lost repair is re-announced by the CH's next R-3 update).
            for peer, (rank, _backup_count) in sorted(self.duties.items()):
                if rank == 0:
                    self._forward_refutations(peer, update.refutations, update.head)
        failures = self._news_of(update)
        if not failures:
            return
        for peer, (rank, backup_count) in sorted(self.duties.items()):
            self._start_duty(peer, rank, backup_count, failures, origin=update.head)
        if self.head_boundaries and update.head == self._node.node_id:
            self._start_origin_watch(failures)

    def on_foreign_update(self, update: HealthStatusUpdate) -> None:
        """Profiled entry point for :meth:`_handle_foreign_update`."""
        profiler = self._node.profiler
        if not profiler.enabled:
            self._handle_foreign_update(update)
            return
        t0 = perf_counter()
        try:
            self._handle_foreign_update(update)
        finally:
            profiler.add(PHASE_FDS_INTERCLUSTER, t0)

    def _handle_foreign_update(self, update: HealthStatusUpdate) -> None:
        """An update from another cluster's head was overheard.

        If that head is one of our boundary peers: everything its update
        covers is acknowledged *outbound* (that cluster knows it), and any
        news it carries starts an *inbound* duty toward our own CH.
        """
        if (
            update.takeover_from is not None
            and update.takeover_from in self.duties
            and update.head not in self.duties
        ):
            # The peer cluster's authority changed (DCH takeover, or a
            # revert): our boundary now points at the new head.
            self.duties[update.head] = self.duties.pop(update.takeover_from)
            if update.takeover_from in self.head_boundaries:
                self.head_boundaries[update.head] = self.head_boundaries.pop(
                    update.takeover_from
                )
            self._trace(
                ev.INTER_RENAMED,
                old=int(update.takeover_from),
                new=int(update.head),
            )
        if update.head not in self.duties:
            return
        for refuted in update.refutations:
            self.ledger.clear_failure(refuted)
        covered = self._coverage_of(update) - update.refutations
        self.ledger.note_ack(update.head, covered)
        if covered:
            self._trace(
                ev.INTER_ACK, peer=int(update.head), covered=self._ids(covered)
            )
        my_head = self._get_head()
        rank, backup_count = self.duties[update.head]
        if update.refutations and rank == 0:
            self._forward_refutations(my_head, update.refutations, update.head)
        failures = self._news_of(update)
        failures = frozenset(f for f in failures if f != my_head)
        if not failures:
            return
        self._start_duty(
            my_head, rank, backup_count, failures, origin=update.head
        )

    @staticmethod
    def _news_of(update: HealthStatusUpdate) -> FrozenSet[NodeId]:
        failures = frozenset(update.new_failures)
        if update.takeover_from is not None and (
            update.takeover_from in update.known_failures
        ):
            failures |= {update.takeover_from}
        return failures

    @staticmethod
    def _coverage_of(update: HealthStatusUpdate) -> FrozenSet[NodeId]:
        return frozenset(update.known_failures | update.new_failures)

    # ------------------------------------------------------------------
    # GW / BGW duty (direction-agnostic: ``dest`` is the head to reach)
    # ------------------------------------------------------------------
    def _start_duty(
        self,
        dest: NodeId,
        rank: int,
        backup_count: int,
        failures: FrozenSet[NodeId],
        origin: NodeId,
    ) -> None:
        pending = self.ledger.pending(dest, failures)
        if not pending:
            return
        self._trace(
            ev.INTER_DUTY,
            dest=int(dest),
            origin=int(origin),
            rank=rank,
            backup_count=backup_count,
            failures=self._ids(pending),
        )
        if rank == 0:
            # Primary GW: forward immediately, then watch for the ack.
            self._forward(dest, pending, origin)
            if self._config.implicit_ack:
                self._arm(
                    dest,
                    self._config.post_forward_wait(backup_count),
                    failures,
                    origin,
                )
        elif self._config.implicit_ack:
            # BGW rank k: stand by for k * 2*Thop first.
            self._arm(
                dest, self._config.bgw_standby(rank), failures, origin, standby=True
            )

    def _arm(
        self,
        dest: NodeId,
        delay: float,
        failures: FrozenSet[NodeId],
        origin: NodeId,
        standby: bool = False,
    ) -> None:
        existing = self._timers.get(dest)
        if existing is not None:
            existing.stop()
            # Merge with the in-flight duty's watch set: the new timer
            # covers both reports' failures, so neither loses its retries.
            failures = failures | self._armed_failures.get(dest, frozenset())
        self._armed_failures[dest] = failures
        self._trace(
            ev.INTER_ARM,
            dest=int(dest),
            origin=int(origin),
            delay=delay,
            failures=self._ids(failures),
            standby=standby,
        )

        def expire() -> None:
            self._on_timeout(dest, failures, origin, standby)

        self._timers[dest] = self._node.timers.after(
            delay, expire, label="fds.intercluster_wait"
        )

    def _on_timeout(
        self,
        dest: NodeId,
        failures: FrozenSet[NodeId],
        origin: NodeId,
        standby: bool,
    ) -> None:
        # Timer-driven forwarding fires outside any FDS round, so it must
        # charge the inter-cluster phase itself.
        profiler = self._node.profiler
        if not profiler.enabled:
            self._handle_timeout(dest, failures, origin, standby)
            return
        t0 = perf_counter()
        try:
            self._handle_timeout(dest, failures, origin, standby)
        finally:
            profiler.add(PHASE_FDS_INTERCLUSTER, t0)

    def _handle_timeout(
        self,
        dest: NodeId,
        failures: FrozenSet[NodeId],
        origin: NodeId,
        standby: bool,
    ) -> None:
        pending = self.ledger.pending(dest, failures)
        pending = self.ledger.within_budget(
            dest, pending, self._config.max_forward_retries + 1
        )
        if not pending:
            # Acknowledged (or budget exhausted): release the standby and
            # forget the watch set so a later duty starts fresh.
            self._timers.pop(dest, None)
            self._armed_failures.pop(dest, None)
            self._trace(ev.INTER_RELEASE, dest=int(dest))
            return
        if standby:
            self.bgw_activations += 1
        else:
            self.retransmissions += 1
        backup_count = self._backup_count_for(dest, origin)
        self._forward(dest, pending, origin)
        self._arm(dest, self._config.post_forward_wait(backup_count), failures, origin)

    def _backup_count_for(self, dest: NodeId, origin: NodeId) -> int:
        if dest in self.duties:
            return self.duties[dest][1]
        # Inbound duty (dest is our own CH): the report crossed the
        # boundary we share with the origin peer, so the retry wait must
        # match *that* boundary's BGW ladder.
        if origin in self.duties:
            return self.duties[origin][1]
        # Origin unknown (e.g. renamed by a takeover mid-flight): be
        # conservative and wait out the longest ladder we serve.
        return max((n for _r, n in self.duties.values()), default=0)

    def _forward(
        self, dest: NodeId, failures: FrozenSet[NodeId], origin: NodeId
    ) -> None:
        history = (
            self._get_history() if self._config.include_history else frozenset()
        )
        self.reports_sent += 1
        self.ledger.note_attempt(dest, failures)
        self._trace(
            ev.REPORT_FORWARDED,
            peer=int(dest),
            origin=int(origin),
            failures=self._ids(failures),
        )
        self._node.send(
            FailureReport(
                sender=self._node.node_id,
                origin=origin,
                target_head=dest,
                failures=failures,
                history=history - failures,
            ),
            recipient=dest,
        )

    def _forward_refutations(
        self, dest: NodeId, refutations: FrozenSet[NodeId], origin: NodeId
    ) -> None:
        self.reports_sent += 1
        self._node.send(
            FailureReport(
                sender=self._node.node_id,
                origin=origin,
                target_head=dest,
                failures=frozenset(),
                refutations=refutations,
            ),
            recipient=dest,
        )

    # ------------------------------------------------------------------
    # Origin-side watch (CH) -- Figure 3's sender retransmission
    # ------------------------------------------------------------------
    def on_overheard_report(self, report: FailureReport) -> None:
        """A forwarding by a clustermate was overheard.

        For the originating CH this is the implicit acknowledgment of the
        CH -> GW hop: a gateway did pick the report up.
        """
        if self._origin_timer is None:
            return
        self._trace(ev.ORIGIN_COVERED, covered=self._ids(report.failures))
        # A forwarder may legitimately carry only the still-pending subset
        # (it already had acks for the rest), so shrink the watch by the
        # overheard coverage and cancel once everything is covered --
        # requiring a superset match would spuriously rebroadcast.
        self._origin_pending -= report.failures
        if not self._origin_pending:
            self._origin_timer.stop()
            self._origin_timer = None

    def _start_origin_watch(self, failures: FrozenSet[NodeId]) -> None:
        if not self._config.implicit_ack:
            return
        self._origin_pending = failures
        self._origin_retries = 0
        self._trace(ev.ORIGIN_WATCH, failures=self._ids(failures))
        self._arm_origin()

    def _arm_origin(self) -> None:
        if self._origin_timer is not None:
            self._origin_timer.stop()
        self._origin_timer = self._node.timers.after(
            self._config.implicit_ack_window,
            self._origin_timeout,
            label="fds.origin_watch",
        )

    def _origin_timeout(self) -> None:
        self._origin_timer = None
        if not self._origin_pending:
            return
        if self._origin_retries >= self._config.max_forward_retries:
            self._origin_pending = frozenset()
            return
        self._origin_retries += 1
        self.origin_retransmissions += 1
        self._trace(
            ev.ORIGIN_REBROADCAST,
            pending=self._ids(self._origin_pending),
            retry=self._origin_retries,
        )
        self._rebroadcast_update()
        self._arm_origin()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Stop all timers (crash or role change)."""
        for timer in self._timers.values():
            timer.stop()
        self._timers.clear()
        self._armed_failures.clear()
        if self._origin_timer is not None:
            self._origin_timer.stop()
            self._origin_timer = None
        self._origin_pending = frozenset()
