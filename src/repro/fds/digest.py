"""Digest construction (fds.R-2).

A digest "enumerates the nodes in C from which the sender node hears or
overhears their heartbeats during fds.R-1".  The filtering to cluster
members matters: overheard heartbeats from *other* clusters (the disks
overlap, feature F1) must not leak into the digest, or the CH would track
foreign nodes.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet

from repro.fds.messages import Digest
from repro.types import NodeId


def build_digest(
    sender: NodeId,
    execution: int,
    heard_heartbeats: AbstractSet[NodeId],
    cluster_members: AbstractSet[NodeId],
) -> Digest:
    """The digest a node sends to its CH.

    ``heard_heartbeats`` is everything heard in R-1 (possibly including
    foreign-cluster nodes); the digest keeps only cluster members.  The
    sender never lists itself -- its own liveness is evidenced by the
    digest message itself.
    """
    heard: FrozenSet[NodeId] = frozenset(
        nid for nid in heard_heartbeats if nid in cluster_members and nid != sender
    )
    return Digest(sender=sender, execution=execution, heard=heard)


def digest_witnesses(
    digests: dict[NodeId, FrozenSet[NodeId]], target: NodeId
) -> FrozenSet[NodeId]:
    """The digest senders whose digests reflect awareness of ``target``.

    Used by both detection rules ("none of the digests ... reflect a
    member's awareness of the heartbeat of v") and by tests.
    """
    return frozenset(
        sender for sender, heard in digests.items() if target in heard
    )
