"""The host surface the FDS protocol family runs against.

The protocol code (:class:`~repro.fds.service.FdsProtocol` and its
sub-components) never talks to the discrete-event simulator directly:
everything it needs from its host funnels through the small surface
formalized here -- transmit a payload, schedule a restartable timeout,
read a monotonic clock, and emit trace records.  Two hosts implement it:

- :class:`~repro.sim.node.SimNode` -- the discrete-event simulator's
  node: the clock is virtual simulated time, timers are heap events, and
  a "send" fans out through the :class:`~repro.sim.medium.RadioMedium`;
- :class:`~repro.rt.substrate.RtNode` -- the real-network runtime's
  node: the clock is the wall clock, timers are asyncio callbacks, and a
  "send" writes length-prefixed JSON datagrams to localhost UDP sockets.

Because the same protocol objects run unmodified on both substrates, a
simulated scenario and a real-socket scenario of the same spec are
*differentially comparable* (see :mod:`repro.audit.realnet`) -- the
conformance story behind the ``repro rt`` commands.

The interfaces are :class:`typing.Protocol` classes (structural): a host
satisfies them by shape, not by inheritance, so the simulator keeps its
zero-overhead concrete classes and the runtime keeps asyncio-native ones.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from repro.sim.trace import Tracer
from repro.types import NodeId, SimTime


@runtime_checkable
class TimerHandle(Protocol):
    """A one-shot, restartable timeout (the shape of
    :class:`~repro.sim.timers.Timer`)."""

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        ...

    def start(self, delay: SimTime) -> None:
        """(Re)arm the timer ``delay`` substrate-seconds from now."""
        ...

    def stop(self) -> None:
        """Disarm without firing; idempotent."""
        ...


@runtime_checkable
class TimerScheduler(Protocol):
    """A factory of :class:`TimerHandle` objects owned by one node.

    Crash semantics live here: fail-stop requires that crashing a node
    disarms every outstanding timeout in one :meth:`stop_all` call.
    """

    def create(
        self, callback: Callable[[], None], label: str = ""
    ) -> TimerHandle:
        ...

    def after(
        self, delay: SimTime, callback: Callable[[], None], label: str = ""
    ) -> TimerHandle:
        ...

    def stop_all(self) -> None:
        ...


@runtime_checkable
class Substrate(Protocol):
    """What a host must provide for the FDS protocol family to run.

    ``now`` is a monotonic clock in the substrate's own time base
    (virtual seconds for the simulator, wall-clock seconds since the run
    epoch for the runtime); all protocol timing constants
    (:class:`~repro.fds.config.FdsConfig`) are interpreted in that same
    base, so a runtime config simply carries wall-scaled ``phi``/``thop``.
    """

    node_id: NodeId

    @property
    def now(self) -> SimTime:
        """The substrate's monotonic clock."""
        ...

    @property
    def timers(self) -> TimerScheduler:
        """This node's timer service (disarmed wholesale on crash)."""
        ...

    @property
    def tracer(self) -> Tracer:
        """Where this node's trace records go."""
        ...

    @property
    def profiler(self):
        """The phase profiler charged by protocol hot paths
        (:data:`~repro.obs.profiler.NULL_PROFILER` when disabled)."""
        ...

    def send(self, payload: object, recipient: Optional[NodeId] = None) -> int:
        """Transmit ``payload`` (``recipient=None`` broadcasts).

        A crashed host silently sends nothing (fail-stop), returning 0.
        """
        ...
