"""The cluster-based failure detection service (Section 4 of the paper).

Public surface:

- :class:`FdsConfig` -- protocol timing and mechanism toggles.
- :class:`FdsProtocol` -- the per-node protocol (installed on sim nodes).
- :func:`install_fds` / :class:`FdsDeployment` -- wire an FDS onto a
  network given a :class:`~repro.cluster.state.ClusterLayout`.
- :mod:`repro.fds.detector` -- the paper's two detection rules as pure
  functions.
"""

from repro.fds.config import FdsConfig
from repro.fds.detector import (
    DetectionInputs,
    apply_ch_failure_rule,
    apply_failure_rule,
)
from repro.fds.digest import build_digest
from repro.fds.messages import (
    Digest,
    FailureReport,
    Heartbeat,
    HealthStatusUpdate,
    PeerForward,
    PeerForwardAck,
    PeerForwardRequest,
)
from repro.fds.membership import (
    MembershipView,
    ViewTracker,
    attach_view_trackers,
)
from repro.fds.reports import ReportHistory
from repro.fds.service import FdsDeployment, FdsProtocol, install_fds

__all__ = [
    "FdsConfig",
    "FdsProtocol",
    "FdsDeployment",
    "install_fds",
    "DetectionInputs",
    "apply_failure_rule",
    "apply_ch_failure_rule",
    "build_digest",
    "Heartbeat",
    "Digest",
    "HealthStatusUpdate",
    "FailureReport",
    "PeerForward",
    "PeerForwardAck",
    "PeerForwardRequest",
    "ReportHistory",
    "MembershipView",
    "ViewTracker",
    "attach_view_trackers",
]
