"""FDS configuration.

Timing follows Section 4.2: each of the three rounds has a fixed duration
``thop`` (the paper's ``Thop``, the assumed per-hop delivery bound), and an
FDS execution starts at the epoch of each heartbeat interval ``phi`` (the
paper's heartbeat interval).  The execution occupies a small fraction of
``phi`` -- the paper's assumption that nodes do not crash *during* an
execution is honored by the failure injector, which schedules crashes at
mid-interval points.

Every redundancy mechanism of the paper can be toggled off independently,
which is what the ablation benchmarks sweep:

- ``use_digests``       -- round R-2 and the digest clauses of both rules;
- ``peer_forwarding``   -- the intra-cluster completeness enhancement;
- ``intercluster_forwarding`` / ``max_backups-style`` BGW standby;
- ``implicit_ack``      -- overheard-forwarding acknowledgments (off means
  forward-and-hope, no retransmission);
- ``admit_unmarked``    -- feature F5 membership subscriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_int_at_least,
    check_positive,
)


@dataclass(frozen=True)
class FdsConfig:
    """Protocol timing and mechanism toggles."""

    #: Heartbeat interval (seconds between FDS execution epochs).
    phi: float = 30.0
    #: Round duration / per-hop delivery bound (seconds).
    thop: float = 0.5
    #: Length of the peer-forwarding recovery window after R-3 ends,
    #: expressed in multiples of ``thop``.
    recovery_rounds: float = 2.0
    #: Maximum retransmissions a GW/CH attempts per report per boundary.
    max_forward_retries: int = 2

    use_digests: bool = True
    peer_forwarding: bool = True
    intercluster_forwarding: bool = True
    implicit_ack: bool = True
    admit_unmarked: bool = True
    #: Include previously known failures in outgoing failure reports
    #: (Section 4.3's completeness repair for clusters that missed earlier
    #: reports).
    include_history: bool = True
    #: DCH monitoring and takeover (feature F2).  Disabling models a plain
    #: clustering with no deputies.
    dch_enabled: bool = True
    #: Number of deputies the CH maintains when re-ranking.
    deputy_count: int = 2
    #: Honor sleep announcements (Section 6 power management): absences a
    #: node announced before sleeping are excused by the detection rules.
    #: Disabling models a naive FDS under sleep/wakeup, which false-detects
    #: every sleeping member.
    sleep_aware: bool = True
    #: Re-rank deputies by observed digest coverage and announce the
    #: ranking in R-3 updates.  The best-witnessed members are the ones a
    #: takeover can rely on to reach the whole cluster (the reachability
    #: concern of Section 4.2 / Figure 2); disabling keeps the installed
    #: (formation-time) deputy ranking forever.
    rerank_deputies: bool = True

    # Peer-forwarding waiting-period policy knobs (see
    # :class:`repro.energy.policy.WaitingPeriodPolicy`).
    wait_slot: float = 0.03
    wait_modulus: int = 128
    energy_floor: float = 0.1

    def __post_init__(self) -> None:
        check_positive("phi", self.phi)
        check_positive("thop", self.thop)
        check_positive("recovery_rounds", self.recovery_rounds)
        check_int_at_least("max_forward_retries", self.max_forward_retries, 0)
        check_positive("wait_slot", self.wait_slot)
        check_int_at_least("wait_modulus", self.wait_modulus, 2)
        check_int_at_least("deputy_count", self.deputy_count, 0)
        if not 0.0 < self.energy_floor <= 1.0:
            raise ConfigurationError(
                f"energy_floor must be in (0, 1], got {self.energy_floor}"
            )
        # The whole execution (3 rounds + recovery + worst-case BGW standby
        # chatter) must fit comfortably inside one heartbeat interval.
        if self.phi < self.execution_duration():
            raise ConfigurationError(
                f"phi={self.phi} is shorter than one FDS execution "
                f"({self.execution_duration()}); increase phi or shrink thop"
            )

    # -- derived timing -------------------------------------------------
    def round_start(self, epoch: float, round_index: int) -> float:
        """Absolute start time of round ``round_index`` (0-based) at ``epoch``."""
        return epoch + round_index * self.thop

    def execution_duration(self) -> float:
        """Duration of R-1..R-3 plus the recovery window."""
        return (3.0 + self.recovery_rounds) * self.thop

    @property
    def r3_end_offset(self) -> float:
        """Offset from the epoch to the end of R-3 (the report timeout)."""
        return 3.0 * self.thop

    @property
    def implicit_ack_window(self) -> float:
        """The sender-side retransmission timeout (``2 * Thop``, Fig. 3)."""
        return 2.0 * self.thop

    def bgw_standby(self, rank: int) -> float:
        """Standby delay of BGW rank ``k`` before self-forwarding."""
        if rank < 1:
            raise ConfigurationError(f"BGW rank must be >= 1, got {rank}")
        return rank * self.implicit_ack_window

    def post_forward_wait(self, backup_count: int) -> float:
        """The ``(n + 1) * 2 * Thop`` wait after forwarding (Section 4.3)."""
        if backup_count < 0:
            raise ConfigurationError(
                f"backup_count must be >= 0, got {backup_count}"
            )
        return (backup_count + 1) * self.implicit_ack_window
