"""Failure-report bookkeeping.

Each node accumulates a monotone set of known failures; clusterheads
additionally track which failures each neighboring cluster has acknowledged
(via the implicit-ack relay) so gateways forward each failure across each
boundary at most the bounded-retry number of times.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.types import NodeId


class ReportHistory:
    """A node's cumulative failure knowledge.

    ``add`` returns the *novel* subset, which is what drives "no news is
    good news": only novelty triggers relays and inter-cluster forwarding.

    The fail-stop model makes failure knowledge monotone; the single
    exception is a *refuted* false detection (direct evidence that a
    "failed" node is alive), which removes the node and remembers the
    refutation so metrics can count it.
    """

    def __init__(self) -> None:
        self._known: Set[NodeId] = set()
        self.refuted_total = 0

    @property
    def known(self) -> FrozenSet[NodeId]:
        return frozenset(self._known)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._known

    def __len__(self) -> int:
        return len(self._known)

    def add(self, failures: FrozenSet[NodeId] | Set[NodeId]) -> FrozenSet[NodeId]:
        """Merge ``failures``; returns the subset that was new."""
        novel = frozenset(failures) - frozenset(self._known)
        self._known.update(novel)
        return novel

    def refute(self, node_id: NodeId) -> bool:
        """Remove a falsely suspected node; True if it was present."""
        if node_id in self._known:
            self._known.discard(node_id)
            self.refuted_total += 1
            return True
        return False


class BoundaryLedger:
    """Per-boundary forwarding state for a GW/BGW or originating CH.

    Tracks, per peer clusterhead, which failure NIDs have been acknowledged
    (covered by an overheard relay from that peer) and how many times each
    pending failure has been (re)transmitted.
    """

    def __init__(self) -> None:
        self._acked: Dict[NodeId, Set[NodeId]] = {}
        self._attempts: Dict[NodeId, Dict[NodeId, int]] = {}

    def acked(self, peer: NodeId) -> FrozenSet[NodeId]:
        return frozenset(self._acked.get(peer, set()))

    def note_ack(self, peer: NodeId, failures: FrozenSet[NodeId]) -> None:
        """Record that ``peer``'s cluster has re-broadcast these failures."""
        self._acked.setdefault(peer, set()).update(failures)

    def pending(self, peer: NodeId, failures: FrozenSet[NodeId]) -> FrozenSet[NodeId]:
        """The subset of ``failures`` not yet acked by ``peer``."""
        return failures - self.acked(peer)

    def note_attempt(self, peer: NodeId, failures: FrozenSet[NodeId]) -> None:
        """Count one transmission attempt toward each failure."""
        per_peer = self._attempts.setdefault(peer, {})
        for nid in failures:
            per_peer[nid] = per_peer.get(nid, 0) + 1

    def attempts(self, peer: NodeId, failure: NodeId) -> int:
        return self._attempts.get(peer, {}).get(failure, 0)

    def within_budget(
        self, peer: NodeId, failures: FrozenSet[NodeId], max_attempts: int
    ) -> FrozenSet[NodeId]:
        """The subset of ``failures`` still under the retry budget."""
        return frozenset(
            nid for nid in failures if self.attempts(peer, nid) < max_attempts
        )

    def clear_failure(self, node_id: NodeId) -> None:
        """Forget all state about a failure id (it was refuted).

        Without this, a refuted node that later *really* crashes would be
        treated as already acknowledged and never forwarded again.
        """
        for acked in self._acked.values():
            acked.discard(node_id)
        for per_peer in self._attempts.values():
            per_peer.pop(node_id, None)
