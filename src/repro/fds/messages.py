"""FDS wire messages.

All messages are immutable dataclasses.  Field conventions:

- ``sender`` -- NID of the transmitting node;
- ``execution`` -- the FDS execution index (epoch counter) the message
  belongs to, used to discard stale copies;
- failure sets are ``frozenset`` of NIDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """fds.R-1: NID plus the one-bit mark indicator (Section 4.2 / F5).

    ``piggyback`` is the message-sharing slot of the paper's Section 6
    outlook: application payloads (e.g. a sensor measurement for
    in-network aggregation) ride on the heartbeat at zero extra
    transmissions.
    """

    sender: NodeId
    execution: int
    marked: bool = True
    piggyback: object = None
    #: Sleep announcement (Section 6 power management): the sender will
    #: sleep through this many upcoming executions.  Sleep-aware
    #: authorities excuse the announced absences instead of detecting.
    sleep_span: int = 0


@dataclass(frozen=True, slots=True)
class Digest:
    """fds.R-2: the in-cluster nodes whose heartbeats the sender heard."""

    sender: NodeId
    execution: int
    heard: FrozenSet[NodeId]


@dataclass(frozen=True, slots=True)
class HealthStatusUpdate:
    """fds.R-3 broadcast (and asynchronous relays of remote reports).

    ``head`` is the broadcasting authority (the CH, or the DCH on
    takeover).  ``new_failures`` are newly detected this execution (local
    detections and newly learned remote failures); ``known_failures`` is
    the cumulative set; ``admissions`` are newly subscribed members (F5).
    ``takeover_from`` is set when a DCH has detected the CH's failure and
    assumed its duties; ``relay`` marks asynchronous re-broadcasts of
    remote failure reports (which also serve as the implicit
    acknowledgment of Section 4.3).
    """

    head: NodeId
    execution: int
    new_failures: FrozenSet[NodeId] = frozenset()
    known_failures: FrozenSet[NodeId] = frozenset()
    admissions: FrozenSet[NodeId] = frozenset()
    takeover_from: Optional[NodeId] = None
    relay: bool = False
    #: Full current membership, included only when it changed this
    #: execution (admissions or takeover) so newly admitted members and
    #: survivors of a CH failure synchronize their local views.
    membership: Optional[FrozenSet[NodeId]] = None
    #: Nodes previously announced failed that the authority has since seen
    #: direct liveness evidence from (false detections being repaired).
    refutations: FrozenSet[NodeId] = frozenset()
    #: Current ranked deputy list.  The CH re-ranks deputies by observed
    #: digest coverage (the best-connected members make the safest
    #: takeover authorities -- Section 4.2's reachability discussion) and
    #: announces the ranking so the whole cluster agrees on the authority.
    deputies: Optional[Tuple[NodeId, ...]] = None
    #: Message-sharing slot (Section 6): e.g. the cluster's partial
    #: aggregate rides on the health-status update.
    piggyback: object = None

    @property
    def has_news(self) -> bool:
        """Whether inter-cluster forwarding is warranted ("no news is
        good news" otherwise)."""
        return bool(self.new_failures) or self.takeover_from is not None


@dataclass(frozen=True, slots=True)
class FailureReport:
    """Across-cluster forwarding payload (Section 4.3).

    ``failures`` are the NIDs being reported; ``history`` optionally
    carries previously detected failures for completeness repair;
    ``origin`` is the cluster that detected them; ``target_head`` is the
    CH the forwarder is addressing.
    """

    sender: NodeId
    origin: NodeId
    target_head: NodeId
    failures: FrozenSet[NodeId]
    history: FrozenSet[NodeId] = frozenset()
    #: Piggybacked false-detection repairs (best-effort, no retry ladder).
    refutations: FrozenSet[NodeId] = frozenset()


@dataclass(frozen=True, slots=True)
class PeerForwardRequest:
    """A node that missed the R-3 update asks its neighbors for a copy."""

    sender: NodeId
    execution: int


@dataclass(frozen=True, slots=True)
class PeerForward:
    """A neighbor forwards the missed update to the requester."""

    sender: NodeId
    requester: NodeId
    update: HealthStatusUpdate


@dataclass(frozen=True, slots=True)
class PeerForwardAck:
    """The requester announces recovery; pending forwarders stand down."""

    sender: NodeId
    execution: int
