"""Cluster membership views on top of the FDS (Section 2.4).

The paper intends the FDS "to support group membership management" while
deferring subscription/unsubscription mechanics.  This module supplies the
view abstraction downstream applications consume:

- a :class:`MembershipView` is an immutable snapshot -- a monotonically
  increasing view number plus the member set the authority vouched for;
- a :class:`ViewTracker` folds a node's stream of health-status updates
  into successive views: the view advances whenever the membership
  actually changes (failures detected, refutations repairing them,
  admissions via F5, takeovers);
- trackers on different nodes of the same cluster converge to identical
  member sets once updates quiesce (tested), so an application can hang
  view-synchronous behaviour off them.

The tracker is deliberately passive: it never transmits.  All information
arrives through the updates the FDS already delivers (message sharing
again), so membership costs nothing extra on the radio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.fds.messages import HealthStatusUpdate
from repro.fds.service import FdsProtocol
from repro.types import NodeId


@dataclass(frozen=True)
class MembershipView:
    """One installed view of a cluster's membership."""

    view_id: int
    head: NodeId
    members: FrozenSet[NodeId]
    #: Execution index of the update that installed this view.
    installed_at: int

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self.members

    @property
    def size(self) -> int:
        return len(self.members)


class ViewTracker:
    """Folds one node's FDS update stream into membership views."""

    def __init__(self, protocol: FdsProtocol) -> None:
        self.protocol = protocol
        self._views: List[MembershipView] = []
        self._last_members: Optional[FrozenSet[NodeId]] = None
        # Chain onto any existing consumer so trackers stack with e.g.
        # the aggregation service.
        self._downstream = protocol.update_consumer
        protocol.update_consumer = self._consume
        # Also observe updates with no piggyback: the FDS only calls the
        # consumer for piggybacked updates, so hook the apply path too.
        self._original_apply = protocol._apply_update
        protocol._apply_update = self._apply_and_track  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _consume(self, update: HealthStatusUpdate) -> None:
        if self._downstream is not None:
            self._downstream(update)

    def _apply_and_track(self, update: HealthStatusUpdate, via_peer: bool) -> None:
        self._original_apply(update, via_peer=via_peer)
        if update.relay:
            return
        self._maybe_install(update)

    def _maybe_install(self, update: HealthStatusUpdate) -> None:
        members = frozenset(self.protocol.members)
        if members == self._last_members:
            return
        self._last_members = members
        self._views.append(
            MembershipView(
                view_id=len(self._views) + 1,
                head=self.protocol.head,
                members=members,
                installed_at=update.execution,
            )
        )

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[MembershipView]:
        """The latest installed view (None before the first update)."""
        return self._views[-1] if self._views else None

    @property
    def history(self) -> List[MembershipView]:
        """All installed views, oldest first."""
        return list(self._views)

    def view_count(self) -> int:
        return len(self._views)


def attach_view_trackers(deployment) -> dict[NodeId, ViewTracker]:
    """A :class:`ViewTracker` on every node of an FDS deployment."""
    return {
        node_id: ViewTracker(protocol)
        for node_id, protocol in sorted(deployment.protocols.items())
    }
