"""The per-node FDS protocol and the network-wide deployment driver.

Execution timeline (one FDS execution at epoch ``t``; Section 4.2):

====================  ====================================================
``t``                 fds.R-1: every node sends its heartbeat (the CH's is
                      a broadcast; members address theirs to the CH but
                      neighbors overhear -- inherent message redundancy).
``t + Thop``          fds.R-2: every node sends its digest of heard
                      heartbeats; the CH broadcasts its own digest.
``t + 2*Thop``        fds.R-3: the CH applies the failure detection rule
                      and broadcasts the health-status update (admissions
                      from feature F5 included).
``t + 3*Thop``        end of R-3: the acting DCH applies the CH-failure
                      rule (takeover on detection); members that missed
                      the update issue peer-forwarding requests; gateways
                      that saw news start across-cluster forwarding.
====================  ====================================================

Every node runs the same :class:`FdsProtocol`; behaviour branches on the
node's *current belief* about its role (CH / deputy / gateway / member),
which starts from the installed :class:`~repro.cluster.state.LocalClusterView`
and evolves with takeovers and admissions.  Protocol code never reads
ground truth; all knowledge arrives by radio.

Protocol code is substrate-agnostic: everything it needs from its host
goes through the :class:`~repro.fds.substrate.Substrate` surface
(``send``, ``timers``, ``now``, ``tracer``, ``profiler``), so the same
objects run inside the discrete-event simulator
(:class:`~repro.sim.node.SimNode`) and on real localhost UDP sockets
(:class:`~repro.rt.substrate.RtNode`).  The deployment driver below
(:class:`FdsDeployment` / :func:`install_fds`) is the *simulator*
binding; the runtime binding lives in :mod:`repro.rt.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from repro.cluster.maintenance import AdmissionBook
from repro.cluster.state import ClusterLayout, LocalClusterView
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError, ProtocolError
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.fds.detector import DetectionInputs, apply_ch_failure_rule, apply_failure_rule
from repro.fds.digest import build_digest
from repro.fds.intercluster import InterclusterForwarder
from repro.fds.messages import (
    Digest,
    FailureReport,
    Heartbeat,
    HealthStatusUpdate,
    PeerForward,
    PeerForwardAck,
    PeerForwardRequest,
)
from repro.fds.peer_forwarding import PeerForwarder
from repro.fds.reports import ReportHistory
from repro.sim.medium import Envelope
from repro.sim.network import Network
from repro.sim.node import Protocol
from repro.types import NodeId, NodeRole


class FdsProtocol(Protocol):
    """One node's failure detection service."""

    name = "fds"

    def __init__(
        self,
        config: FdsConfig,
        view: LocalClusterView,
        energy: Optional[EnergyModel] = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.energy = energy
        # Mutable cluster beliefs, seeded from the installed view.
        self.head: NodeId = view.head
        self.members: Set[NodeId] = set(view.members)
        self.deputies: List[NodeId] = list(view.deputies)
        self.marked: bool = view.role.is_marked
        self._initial_view = view
        #: Everyone ever known to belong to this cluster; refuted nodes are
        #: only restored to ``members`` if they were members before.
        self._ever_members: Set[NodeId] = set(view.members)
        #: CH only: refutations to announce in the next R-3 update.
        self._pending_refutations: Set[NodeId] = set()
        #: CH only: cumulative digest-coverage score per member, used to
        #: re-rank deputies toward the best-connected members.
        self._coverage: Dict[NodeId, int] = {}
        # Failure knowledge.
        self.history = ReportHistory()
        # Per-execution state.
        self.execution = -1
        self._heard: Set[NodeId] = set()
        self._digests: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._updates: Dict[int, HealthStatusUpdate] = {}
        #: Set while this node is acting CH after deposing ``_deposed_head``
        #: via the CH-failure rule; liveness evidence from that node
        #: triggers a takeover revert.
        self._deposed_head: Optional[NodeId] = None
        # Sleep/wakeup support (Section 6 power management).  The sleep
        # manager flips ``asleep`` via ``pre_round1_hook``; a node about to
        # sleep announces the span on its last awake heartbeat, and
        # detecting authorities excuse announced absences.
        self.asleep = False
        self.pre_round1_hook: Optional[Callable[[int], None]] = None
        self.pending_sleep_announcement = 0
        self._excused: Dict[NodeId, int] = {}
        # Message-sharing hooks (Section 6 outlook): applications may ride
        # payloads on heartbeats and updates, and observe received ones.
        # Providers are called at send time with the execution index;
        # consumers receive the whole message.
        self.heartbeat_payload_provider: Optional[Callable[[int], object]] = None
        self.update_payload_provider: Optional[Callable[[int], object]] = None
        self.heartbeat_consumer: Optional[Callable[[Heartbeat], None]] = None
        self.update_consumer: Optional[Callable[[HealthStatusUpdate], None]] = None
        # Sub-components, wired after attach().
        self.peer: Optional[PeerForwarder] = None
        self.inter: Optional[InterclusterForwarder] = None
        self._admissions: Optional[AdmissionBook] = None
        if view.role is NodeRole.CH:
            self._admissions = AdmissionBook()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, node) -> None:
        super().attach(node)
        self.peer = PeerForwarder(
            node,
            self.config,
            get_update=self._updates.get,
            accept_update=lambda update: self._apply_update(update, via_peer=True),
            energy_fraction=self._energy_fraction,
        )
        self.inter = InterclusterForwarder(
            node,
            self.config,
            duties=self._initial_view.gateway_duties,
            head_boundaries=self._initial_view.head_boundaries,
            get_head=lambda: self.head,
            get_history=lambda: self.history.known,
            rebroadcast_update=self._rebroadcast_current_update,
        )

    @property
    def is_head(self) -> bool:
        """Whether this node currently believes it is the clusterhead."""
        assert self.node is not None
        return self.marked and self.head == self.node.node_id

    @property
    def updates_received(self) -> frozenset[int]:
        """Execution indices whose R-3 update this node holds."""
        return frozenset(self._updates)

    def _energy_fraction(self) -> float:
        assert self.node is not None
        if self.energy is None:
            return 1.0
        return self.energy.remaining_fraction(self.node.node_id, self.node.now)

    def _trace(self, kind: str, **detail: object) -> None:
        assert self.node is not None
        self.node.tracer.record(
            self.node.now, kind, node=int(self.node.node_id), **detail
        )

    def _send(self, payload: object, recipient: Optional[NodeId] = None) -> None:
        assert self.node is not None
        if self.energy is not None:
            self.energy.on_transmit(self.node.node_id, self.node.now)
        self.node.send(payload, recipient)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def start(
        self, first_epoch: float, executions: int, first_index: int = 0
    ) -> None:
        """Schedule ``executions`` FDS executions starting at ``first_epoch``.

        ``first_index`` numbers the first scheduled execution; batches
        scheduled across several calls must keep indices monotonically
        increasing so round messages and stored updates never collide.
        """
        assert self.node is not None
        if executions < 1:
            raise ConfigurationError(f"executions must be >= 1, got {executions}")
        now = self.node.now
        if first_epoch < now:
            raise ConfigurationError(
                f"first_epoch {first_epoch} is in the substrate's past ({now})"
            )
        thop = self.config.thop
        for k in range(first_index, first_index + executions):
            epoch_offset = first_epoch - now + (k - first_index) * self.config.phi
            self.node.timers.after(
                epoch_offset, self._make_round(k, self._round1, "fds.r1"),
                label="fds.r1",
            )
            self.node.timers.after(
                epoch_offset + thop, self._make_round(k, self._round2, "fds.r2"),
                label="fds.r2",
            )
            self.node.timers.after(
                epoch_offset + 2 * thop, self._make_round(k, self._round3, "fds.r3"),
                label="fds.r3",
            )
            self.node.timers.after(
                epoch_offset + 3 * thop,
                self._make_round(k, self._round3_end, "fds.r3end"),
                label="fds.r3end",
            )

    def _make_round(self, execution: int, method, phase: str) -> object:
        # One wrapper profiles all four rounds: the phase gate sits here,
        # not in the round bodies, so disabled runs pay a single branch.
        node = self.node
        assert node is not None

        def fire() -> None:
            profiler = node.profiler
            if profiler.enabled:
                t0 = perf_counter()
                try:
                    method(execution)
                finally:
                    profiler.add(phase, t0)
            else:
                method(execution)

        return fire

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _round1(self, execution: int) -> None:
        """fds.R-1: heartbeat exchange."""
        assert self.node is not None
        if self.pre_round1_hook is not None:
            self.pre_round1_hook(execution)
        self.execution = execution
        if self.asleep:
            return
        self._heard = set()
        self._digests = {}
        if self.peer is not None:
            self.peer.reset_for_execution()
        recipient = None if (self.is_head or not self.marked) else self.head
        piggyback = (
            self.heartbeat_payload_provider(execution)
            if self.heartbeat_payload_provider is not None
            else None
        )
        sleep_span = self.pending_sleep_announcement
        self.pending_sleep_announcement = 0
        self._send(
            Heartbeat(
                sender=self.node.node_id,
                execution=execution,
                marked=self.marked,
                piggyback=piggyback,
                sleep_span=sleep_span,
            ),
            recipient=recipient,
        )

    def _round2(self, execution: int) -> None:
        """fds.R-2: digest exchange."""
        assert self.node is not None
        if self.asleep or not self.marked or not self.config.use_digests:
            return
        digest = build_digest(
            sender=self.node.node_id,
            execution=execution,
            heard_heartbeats=self._heard,
            cluster_members=self.members,
        )
        recipient = None if self.is_head else self.head
        self._send(digest, recipient=recipient)

    def _round3(self, execution: int) -> None:
        """fds.R-3: the CH detects and broadcasts the health update."""
        assert self.node is not None
        if self.asleep or not self.is_head:
            return
        my_id = self.node.node_id
        if self.config.use_digests:
            # A digest listing a suspected node is liveness evidence (no
            # message creation on links): refute before detecting.  This
            # heals suspicions of members the head itself cannot hear --
            # the Figure 2(a) reachability case after a takeover.
            for suspect in sorted(self.history.known):
                if any(suspect in heard for heard in self._digests.values()):
                    self._note_liveness(suspect)
        newly_deputies = self._rerank_deputies()
        expected = frozenset(self.members) - {my_id} - self.history.known
        if self.config.sleep_aware and self._excused:
            excused_now = frozenset(
                member
                for member, until in self._excused.items()
                if until >= execution
            )
            expected -= excused_now
            # Prune expired excuses to keep the table small.
            self._excused = {
                m: until for m, until in self._excused.items()
                if until >= execution
            }
        inputs = DetectionInputs(
            heartbeats=frozenset(self._heard), digests=dict(self._digests)
        )
        newly = apply_failure_rule(
            expected, inputs, use_digests=self.config.use_digests
        )
        for target in sorted(newly):
            self._trace(ev.DETECTION, target=int(target), detector=int(my_id),
                        execution=execution)
        novel = self.history.add(newly)
        self.members -= novel

        admissions: FrozenSet[NodeId] = frozenset()
        if self.config.admit_unmarked and self._admissions is not None:
            # No already-a-member filtering: an *unmarked* heartbeat from a
            # node we previously admitted means it never learned of the
            # admission (the announcement was lost) -- re-announce until
            # its heartbeats turn marked.
            admissions = self._admissions.drain(frozenset())
            if admissions:
                self.members |= admissions
                self._ever_members |= admissions
                self._trace(ev.ADMISSION, admissions=sorted(map(int, admissions)),
                            execution=execution)

        refutations = frozenset(self._pending_refutations)
        self._pending_refutations.clear()
        membership = frozenset(self.members) if admissions else None
        piggyback = (
            self.update_payload_provider(execution)
            if self.update_payload_provider is not None
            else None
        )
        update = HealthStatusUpdate(
            head=my_id,
            execution=execution,
            new_failures=novel,
            known_failures=self.history.known,
            admissions=admissions,
            membership=membership,
            refutations=refutations,
            deputies=newly_deputies,
            piggyback=piggyback,
        )
        self._updates[execution] = update
        self._send(update)
        if self.config.intercluster_forwarding and self.inter is not None:
            self.inter.on_local_update(update)

    def _rerank_deputies(self):
        """Accumulate digest coverage and maybe re-rank the deputies.

        Coverage of member m = number of this execution's digests that
        list m, plus direct evidence at the head; accumulated across
        executions so early noise fades.  Returns the new ranking to
        announce (None when unchanged or re-ranking is disabled).
        """
        assert self.node is not None
        my_id = self.node.node_id
        if not (self.config.rerank_deputies and self.config.use_digests
                and self.config.dch_enabled):
            return None
        for member in self.members:
            if member == my_id:
                continue
            score = sum(1 for heard in self._digests.values() if member in heard)
            if member in self._digests:
                score += 1
            if member in self._heard:
                score += 1
            if score:
                self._coverage[member] = self._coverage.get(member, 0) + score
        eligible = [
            m
            for m in self.members
            if m != my_id and m not in self.history
        ]
        ranked = sorted(
            eligible, key=lambda m: (-self._coverage.get(m, 0), int(m))
        )
        new_deputies = tuple(ranked[: self.config.deputy_count])
        if list(new_deputies) == list(self.deputies):
            return None
        self.deputies = list(new_deputies)
        return new_deputies

    def _round3_end(self, execution: int) -> None:
        """End of R-3: DCH rule, then peer-forwarding requests."""
        assert self.node is not None
        if self.asleep or not self.marked or self.is_head:
            return
        if self.config.dch_enabled and self._acting_deputy() == self.node.node_id:
            self._apply_dch_rule(execution)
        if self.is_head:
            return  # just took over; we now hold the update we broadcast
        if self.config.peer_forwarding and execution not in self._updates:
            self._trace(ev.PEER_REQUEST, execution=execution)
            assert self.peer is not None
            self.peer.request_update(execution)

    def _acting_deputy(self) -> Optional[NodeId]:
        """The highest-ranked deputy not known to have failed."""
        for deputy in self.deputies:
            if deputy not in self.history:
                return deputy
        return None

    def _apply_dch_rule(self, execution: int) -> None:
        assert self.node is not None
        if (
            self.config.sleep_aware
            and self._excused.get(self.head, -1) >= execution
        ):
            return  # the CH announced sleep; its silence is excused
        update = self._updates.get(execution)
        update_from = update.head if update is not None else None
        inputs = DetectionInputs(
            heartbeats=frozenset(self._heard),
            digests=dict(self._digests),
            update_received_from=update_from,
        )
        if not apply_ch_failure_rule(self.head, inputs, use_digests=self.config.use_digests):
            return
        old_head = self.head
        my_id = self.node.node_id
        self._trace(ev.TAKEOVER, old_head=int(old_head), new_head=int(my_id),
                    execution=execution)
        self._trace(ev.DETECTION, target=int(old_head), detector=int(my_id),
                    execution=execution)
        self.history.add(frozenset({old_head}))
        self.members.discard(old_head)
        self.head = my_id
        self._deposed_head = old_head
        self.deputies = [d for d in self.deputies if d != my_id]
        if self._admissions is None:
            self._admissions = AdmissionBook()
        update = HealthStatusUpdate(
            head=my_id,
            execution=execution,
            new_failures=frozenset({old_head}),
            known_failures=self.history.known,
            takeover_from=old_head,
            membership=frozenset(self.members),
        )
        self._updates[execution] = update
        self._send(update)
        if self.config.intercluster_forwarding and self.inter is not None:
            self.inter.on_local_update(update)

    def _rebroadcast_current_update(self) -> None:
        """Origin-side retransmission of the latest update (Figure 3)."""
        update = self._updates.get(self.execution)
        if update is not None and self.is_head:
            self._send(update)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_receive(self, envelope: Envelope) -> None:
        assert self.node is not None
        if self.energy is not None:
            self.energy.on_receive(self.node.node_id, self.node.now)
        payload = envelope.payload
        if isinstance(payload, Heartbeat):
            self._on_heartbeat(payload)
        elif isinstance(payload, Digest):
            self._on_digest(payload)
        elif isinstance(payload, HealthStatusUpdate):
            self._on_update(payload)
        elif isinstance(payload, FailureReport):
            self._on_report(payload)
        elif isinstance(payload, PeerForwardRequest):
            if self.config.peer_forwarding and self.peer is not None:
                self.peer.on_request(payload)
        elif isinstance(payload, PeerForward):
            if self.peer is not None:
                self.peer.on_peer_forward(payload)
            # An overheard peer-forward carries a full authority update.
            # For a boundary forwarder this is a second listening channel
            # into the neighboring cluster: after a takeover there, the
            # new head may be out of our radio range (its position is not
            # the old center), but its updates keep circulating among the
            # members in the overlap via peer forwarding.
            if (
                self.inter is not None
                and payload.requester != self.node.node_id
                and payload.update.head != self.head
                and payload.update.head != self.node.node_id
            ):
                self.inter.on_foreign_update(payload.update)
        elif isinstance(payload, PeerForwardAck):
            if self.peer is not None:
                self.peer.on_ack(payload)

    def _on_heartbeat(self, heartbeat: Heartbeat) -> None:
        if heartbeat.execution != self.execution:
            return
        if self.heartbeat_consumer is not None and heartbeat.piggyback is not None:
            self.heartbeat_consumer(heartbeat)
        # Any heartbeat is liveness evidence, whatever its mark bit says --
        # a node admitted via F5 may not have learned of its admission yet
        # (the announcing update can be lost) and still heartbeats unmarked.
        self._heard.add(heartbeat.sender)
        self._note_liveness(heartbeat.sender)
        if (
            not heartbeat.marked
            and self.is_head
            and self.config.admit_unmarked
        ):
            assert self._admissions is not None
            self._admissions.note_unmarked_heartbeat(heartbeat.sender)
        if heartbeat.sleep_span > 0 and self.config.sleep_aware:
            self._excused[heartbeat.sender] = (
                heartbeat.execution + heartbeat.sleep_span
            )

    def _on_digest(self, digest: Digest) -> None:
        if digest.execution != self.execution:
            return
        if digest.sender in self.members:
            self._digests[digest.sender] = digest.heard
            self._note_liveness(digest.sender)

    def _note_liveness(self, sender: NodeId) -> None:
        """Direct evidence that ``sender`` is alive; refute any suspicion.

        Under the fail-stop assumption a crashed node cannot transmit, so
        evidence from a suspected node proves the suspicion false.
        """
        assert self.node is not None
        if sender in self.history:
            self.history.refute(sender)
            if sender in self._ever_members:
                self.members.add(sender)
            self._trace(ev.REFUTATION, target=int(sender))
            if self.is_head:
                # Announce the repair in the next R-3 update so members
                # (and, via gateways, other clusters) drop the suspicion.
                self._pending_refutations.add(sender)
        if self._deposed_head == sender:
            self._revert_takeover(sender)

    def _revert_takeover(self, old_head: NodeId) -> None:
        """The 'failed' CH is alive: the ex-DCH steps down (Section 4.2).

        The revert is announced with the same takeover-update shape the
        original deposition used -- ``head`` names the restored CH and
        ``takeover_from`` names this (stepping-down) node -- so members
        that adopted the deputy switch back with no extra machinery.
        Receivers recognize it as a revert (rather than a deposition)
        because ``takeover_from`` is *not* among the known failures.
        """
        assert self.node is not None
        if not self.is_head:
            return
        my_id = self.node.node_id
        self._trace(ev.TAKEOVER_REVERTED, old_head=int(old_head),
                    new_head=int(my_id))
        self.history.refute(old_head)
        self.members.add(old_head)
        self.head = old_head
        self._deposed_head = None
        if my_id not in self.deputies:
            self.deputies.insert(0, my_id)
        self._send(
            HealthStatusUpdate(
                head=old_head,
                execution=self.execution,
                known_failures=self.history.known,
                takeover_from=my_id,
                membership=frozenset(self.members),
                refutations=frozenset({old_head}),
            )
        )

    def _on_update(self, update: HealthStatusUpdate) -> None:
        assert self.node is not None
        my_id = self.node.node_id
        if update.head == my_id:
            return
        if self.update_consumer is not None and update.piggyback is not None:
            self.update_consumer(update)
        from_my_cluster = (
            update.head == self.head
            or update.takeover_from == self.head
            or update.head in self.deputies
            or update.head in self.members
        )
        if from_my_cluster and self.marked:
            if update.takeover_from == my_id or (
                self.is_head and update.takeover_from is not None
                and update.takeover_from != update.head
            ):
                # Someone claims to have replaced us -- but we are alive.
                # Ignore; our next heartbeat refutes the false detection.
                return
            self._apply_update(update, via_peer=False)
        elif not self.marked and update.admissions and my_id in update.admissions:
            # Feature F5: our unmarked heartbeat was a subscription; we
            # have just been admitted.
            self.marked = True
            self.head = update.head
            self._apply_update(update, via_peer=False)
        elif self.inter is not None:
            # A foreign cluster's update: acknowledgment evidence for any
            # boundary duties toward that head.
            self.inter.on_foreign_update(update)

    def _apply_update(self, update: HealthStatusUpdate, via_peer: bool) -> None:
        """Merge an authoritative update from our cluster into local state."""
        assert self.node is not None
        my_id = self.node.node_id
        self._note_liveness(update.head)
        # A node never records itself as failed: being able to process the
        # update is direct proof of its own liveness (a false detection of
        # us is refuted by our next heartbeat instead).
        self._process_refutations(update.refutations)
        novel = self.history.add(
            (update.new_failures | update.known_failures)
            - {my_id}
            - update.refutations
        )
        self.members -= novel
        if update.membership is not None:
            self.members = set(update.membership)
            self.members.add(my_id)
            self._ever_members |= self.members
        elif update.admissions:
            self.members |= update.admissions
            self._ever_members |= update.admissions
        if update.takeover_from is not None and update.takeover_from == self.head:
            # A deposition (our head failed) or a revert (the deputy we had
            # adopted steps back down); both move authority to update.head.
            self.head = update.head
            self.deputies = [d for d in self.deputies if d != update.head]
            if update.takeover_from not in update.known_failures:
                # Revert: the stepping-down deputy stays in the chain.
                if update.takeover_from not in self.deputies:
                    self.deputies.insert(0, update.takeover_from)
        elif (
            self.head in update.known_failures
            and update.head != self.head
            and not update.relay
        ):
            # We missed the takeover announcement: our believed head is
            # reported failed by a new authority; adopt it.
            self.head = update.head
            self.deputies = [d for d in self.deputies if d != update.head]
        if (
            update.deputies is not None
            and update.head == self.head
            and not update.relay
        ):
            self.deputies = list(update.deputies)
        if update.head == self.head and not update.relay:
            if update.execution not in self._updates:
                self._updates[update.execution] = update
                self._trace(ev.UPDATE_APPLIED, execution=update.execution,
                            via_peer=via_peer)
                if via_peer:
                    self._trace(ev.PEER_RECOVERY, execution=update.execution)
        if update.relay:
            self._trace(ev.RELAY, failures=sorted(map(int, update.new_failures)),
                        origin=int(update.head))
        # Gateways record coverage and propagate any news outward.
        if self.config.intercluster_forwarding and self.inter is not None:
            self.inter.on_local_update(update)

    def _process_refutations(self, refutations) -> None:
        """Drop suspicions the reporting authority has repaired."""
        assert self.node is not None
        my_id = self.node.node_id
        for refuted in sorted(refutations):
            if refuted == my_id:
                continue
            if refuted in self.history:
                self.history.refute(refuted)
                if refuted in self._ever_members:
                    self.members.add(refuted)
                self._trace(ev.REFUTATION, target=int(refuted))
                if self.is_head:
                    self._pending_refutations.add(refuted)

    def _on_report(self, report: FailureReport) -> None:
        assert self.node is not None
        my_id = self.node.node_id
        if report.target_head == my_id and self.is_head:
            # Refutations that are news to us get relayed onward.
            novel_refutations = frozenset(
                r for r in report.refutations if r in self.history and r != my_id
            )
            self._process_refutations(report.refutations)
            incoming = frozenset(report.failures)
            if self.config.include_history:
                incoming |= report.history
            # Direct liveness evidence beats hearsay: a heartbeat heard
            # this execution proves the node outlived whatever stale
            # observation the forwarded report (or its piggybacked
            # history) carries.  Without this filter a CH that just
            # refuted a false detection re-adopts the suspicion from a
            # still-circulating report, re-refutes on the next
            # heartbeat, and the refutation resets boundary-forwarding
            # budgets (BoundaryLedger.clear_failure) -- an unbounded
            # relay/refutation cycle in digest-free configurations
            # under heavy loss.  Real crashes are unaffected: a crashed
            # node is silent, so it is never in ``_heard``.
            incoming = frozenset(
                nid
                for nid in incoming
                if nid != my_id
                and nid not in report.refutations
                and nid not in self._heard
            )
            novel = self.history.add(incoming)
            self.members -= novel
            relay_news = frozenset(report.failures & novel)
            if not relay_news and not novel_refutations and not report.failures:
                return  # pure-refutation report with nothing new: no relay
            self._trace(ev.RELAY, failures=sorted(map(int, relay_news)),
                        origin=int(report.origin))
            relay = HealthStatusUpdate(
                head=my_id,
                execution=self.execution,
                new_failures=relay_news,
                known_failures=self.history.known,
                relay=True,
                refutations=novel_refutations,
            )
            self._send(relay)
            if self.config.intercluster_forwarding and self.inter is not None:
                self.inter.on_local_update(relay)
        elif self.inter is not None:
            # Overhearing a clustermate's forwarding: origin-side implicit
            # acknowledgment (Figure 3).
            if report.origin == self.head:
                self.inter.on_overheard_report(report)

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        if self.inter is not None:
            self.inter.reset()
        if self.peer is not None:
            self.peer.reset_for_execution()


# ----------------------------------------------------------------------
# Deployment
# ----------------------------------------------------------------------


@dataclass
class FdsDeployment:
    """An FDS installed across a network.

    Created by :func:`install_fds`; drives executions and exposes per-node
    protocols to the metrics layer.
    """

    network: Network
    layout: ClusterLayout
    config: FdsConfig
    protocols: Dict[NodeId, FdsProtocol]
    energy: Optional[EnergyModel]
    start_time: float
    executions_scheduled: int = 0

    def run_executions(self, count: int) -> None:
        """Schedule and run ``count`` further FDS executions to completion."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        first_epoch = self.start_time + self.executions_scheduled * self.config.phi
        if first_epoch < self.network.sim.now:
            raise ProtocolError(
                "cannot schedule executions in the past; the simulation ran "
                "beyond the next epoch"
            )
        for node_id, protocol in sorted(self.protocols.items()):
            if self.network.nodes[node_id].is_operational:
                protocol.start(
                    first_epoch, count, first_index=self.executions_scheduled
                )
        self.executions_scheduled += count
        end = first_epoch + (count - 1) * self.config.phi + self.config.phi * 0.95
        self.network.sim.run_until(end)

    def protocol(self, node_id: NodeId) -> FdsProtocol:
        try:
            return self.protocols[node_id]
        except KeyError:
            raise ConfigurationError(f"no FDS protocol on node {node_id}") from None

    def knowledge_of(self, failure: NodeId) -> FrozenSet[NodeId]:
        """Operational clustered nodes whose history includes ``failure``."""
        return frozenset(
            nid
            for nid, protocol in self.protocols.items()
            if self.network.nodes[nid].is_operational
            and failure in protocol.history
        )


def install_fds(
    network: Network,
    layout: ClusterLayout,
    config: Optional[FdsConfig] = None,
    energy: Optional[EnergyModel] = None,
    start_time: float = 0.0,
) -> FdsDeployment:
    """Attach an :class:`FdsProtocol` to every node per the layout."""
    cfg = config if config is not None else FdsConfig()
    if network.medium.max_delay >= cfg.thop:
        raise ConfigurationError(
            f"thop ({cfg.thop}) must exceed the medium's max one-hop delay "
            f"({network.medium.max_delay}) for the round timeouts to hold"
        )
    if energy is not None:
        for node_id in sorted(network.nodes):
            energy.register(node_id, network.sim.now)
    protocols: Dict[NodeId, FdsProtocol] = {}
    for node_id, node in sorted(network.nodes.items()):
        view = layout.local_view(node_id)
        protocol = FdsProtocol(cfg, view, energy=energy)
        node.add_protocol(protocol)
        protocols[node_id] = protocol
    return FdsDeployment(
        network=network,
        layout=layout,
        config=cfg,
        protocols=protocols,
        energy=energy,
        start_time=start_time,
    )
