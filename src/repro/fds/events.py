"""Trace event kinds emitted by the FDS.

Centralizing the kind strings keeps the protocol, the metrics layer, and
the tests agreeing on spelling.  All FDS records use the ``fds.`` prefix so
``RecordingTracer.filter("fds")`` captures the protocol's whole activity.
"""

from __future__ import annotations

#: A detecting authority (CH or DCH) concluded a node failed.
#: detail: target, detector, execution.
DETECTION = "fds.detection"

#: A DCH concluded the CH failed and assumed its duties.
#: detail: old_head, new_head, execution.
TAKEOVER = "fds.takeover"

#: A node received direct evidence (heartbeat/digest/update) from a node
#: it had marked failed, and unmarked it.  detail: target.
REFUTATION = "fds.refutation"

#: An ex-DCH heard the old CH alive and reverted its takeover.
#: detail: old_head, new_head.
TAKEOVER_REVERTED = "fds.takeover_reverted"

#: A member missed the R-3 update and requested peer forwarding.
#: detail: execution.
PEER_REQUEST = "fds.peer_request"

#: A requester recovered the update via peer forwarding.
#: detail: execution, from_node.
PEER_RECOVERY = "fds.peer_recovery"

#: A CH relayed a remote failure report into its cluster (which doubles as
#: the implicit acknowledgment).  detail: failures, origin.
RELAY = "fds.relay"

#: A forwarder transmitted a failure report across a boundary.
#: detail: peer, origin, failures.
REPORT_FORWARDED = "fds.report_forwarded"

#: A GW/BGW started (or re-keyed) a boundary duty.
#: detail: dest, origin, rank, backup_count, failures.
INTER_DUTY = "fds.inter_duty"

#: A forwarder armed (or re-armed) its implicit-ack / standby timer.
#: detail: dest, origin, delay, failures, standby.
INTER_ARM = "fds.inter_arm"

#: Overheard coverage acknowledged failures toward a peer head.
#: detail: peer, covered.
INTER_ACK = "fds.inter_ack"

#: An armed duty timer expired with everything acked or budget-exhausted;
#: the watch toward that destination was released.  detail: dest.
INTER_RELEASE = "fds.inter_release"

#: A boundary duty was renamed after a peer takeover (old head -> new).
#: detail: old, new.
INTER_RENAMED = "fds.inter_renamed"

#: An originating CH armed its forwarding watch.  detail: failures.
ORIGIN_WATCH = "fds.origin_watch"

#: The origin overheard a forwarder's report covering part of its watch.
#: detail: covered.
ORIGIN_COVERED = "fds.origin_covered"

#: The origin watch expired uncovered and the CH rebroadcast its update.
#: detail: pending, retry.
ORIGIN_REBROADCAST = "fds.origin_rebroadcast"

#: A CH admitted unmarked nodes as new members (feature F5).
#: detail: admissions, execution.
ADMISSION = "fds.admission"

#: A node finished merging an R-3 update into its state.
#: detail: execution, via_peer (bool).
UPDATE_APPLIED = "fds.update_applied"
