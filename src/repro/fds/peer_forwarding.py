"""Intra-cluster peer forwarding (Section 4.2, completeness enhancement).

fds.R-3 has no built-in redundancy: a member that loses the CH's (or
DCH's) health-status update would stay ignorant of detected failures.  The
paper's remedy:

- at the end of R-3 (the report-receiving timeout) the node broadcasts a
  forwarding request;
- each in-cluster neighbor holding the update arms a *waiting period* that
  is unique per node (a function of NID) and inversely proportional to its
  remaining energy (:class:`~repro.energy.policy.WaitingPeriodPolicy`);
- the first timer to expire forwards the update; the requester broadcasts
  an acknowledgment, upon which all other pending forwarders stand down.

Peer forwarding is what lets a member out of the DCH's transmission range
(Figure 2) still learn of a takeover: any common neighbor relays on
request.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.energy.policy import WaitingPeriodPolicy
from repro.fds.config import FdsConfig
from repro.fds.messages import (
    HealthStatusUpdate,
    PeerForward,
    PeerForwardAck,
    PeerForwardRequest,
)
from repro.fds.substrate import Substrate, TimerHandle
from repro.types import NodeId


class PeerForwarder:
    """Per-node peer-forwarding state machine.

    The owning :class:`~repro.fds.service.FdsProtocol` routes the three
    peer-forwarding message types here and provides:

    ``get_update(execution)``
        the R-3 update this node holds for the given execution (or None);
    ``accept_update(update)``
        merge a recovered update into the node's state;
    ``energy_fraction()``
        the node's current remaining-energy fraction in [0, 1].
    """

    def __init__(
        self,
        node: Substrate,
        config: FdsConfig,
        get_update: Callable[[int], Optional[HealthStatusUpdate]],
        accept_update: Callable[[HealthStatusUpdate], None],
        energy_fraction: Callable[[], float],
    ) -> None:
        self._node = node
        self._config = config
        self._policy = WaitingPeriodPolicy(
            slot=config.wait_slot,
            modulus=config.wait_modulus,
            energy_floor=config.energy_floor,
        )
        self._get_update = get_update
        self._accept_update = accept_update
        self._energy_fraction = energy_fraction
        # Responder state: (requester, execution) -> armed timer.
        self._pending: Dict[Tuple[NodeId, int], TimerHandle] = {}
        # Requester state.
        self._requested_execution: Optional[int] = None
        self._recovered = False
        # Counters for metrics.
        self.requests_sent = 0
        self.forwards_sent = 0
        self.recoveries = 0

    # -- requester side --------------------------------------------------
    def request_update(self, execution: int) -> None:
        """Broadcast a forwarding request (called at the end of R-3)."""
        self._requested_execution = execution
        self._recovered = False
        self.requests_sent += 1
        self._node.send(
            PeerForwardRequest(sender=self._node.node_id, execution=execution)
        )

    def on_peer_forward(self, message: PeerForward) -> None:
        """A neighbor answered some requester's plea.

        If we are that requester and still unrecovered, accept and ack.
        Overheard copies for other requesters are ignored (their own acks
        stand the forwarders down).
        """
        if message.requester != self._node.node_id:
            return
        if self._requested_execution is None:
            return
        if message.update.execution != self._requested_execution:
            return
        if self._recovered:
            return
        self._recovered = True
        self.recoveries += 1
        self._accept_update(message.update)
        self._node.send(
            PeerForwardAck(
                sender=self._node.node_id, execution=message.update.execution
            )
        )

    # -- responder side ---------------------------------------------------
    def on_request(self, request: PeerForwardRequest) -> None:
        """A neighbor asked for the update; arm the energy-aware wait."""
        if request.sender == self._node.node_id:
            return
        update = self._get_update(request.execution)
        if update is None:
            return
        key = (request.sender, request.execution)
        if key in self._pending:
            return
        delay = self._policy.waiting_period(
            self._node.node_id, self._energy_fraction()
        )

        def forward() -> None:
            self._pending.pop(key, None)
            current = self._get_update(request.execution)
            if current is None:
                return
            self.forwards_sent += 1
            self._node.send(
                PeerForward(
                    sender=self._node.node_id,
                    requester=request.sender,
                    update=current,
                )
            )

        self._pending[key] = self._node.timers.after(
            delay, forward, label="fds.peer_forward_wait"
        )

    def on_ack(self, ack: PeerForwardAck) -> None:
        """The requester recovered; stand down any pending forward to it."""
        key = (ack.sender, ack.execution)
        timer = self._pending.pop(key, None)
        if timer is not None:
            timer.stop()

    def reset_for_execution(self) -> None:
        """Drop stale responder timers at the start of a new execution."""
        for timer in self._pending.values():
            timer.stop()
        self._pending.clear()
        self._requested_execution = None
        self._recovered = False
