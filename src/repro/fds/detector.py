"""The paper's two detection rules, as pure functions.

Keeping the rules free of protocol plumbing makes the paper's soundness
argument directly testable:

- *Failure detection rule* (Section 4.2): a node v is determined to have
  failed iff (1) the CH receives neither v's heartbeat in fds.R-1 nor the
  digest from v in fds.R-2, AND (2) none of the digests the CH receives
  reflect a member's awareness of the heartbeat of v.

- *CH-failure detection rule*: the (highest-ranked) DCH judges the CH
  failed iff (1) the DCH receives neither the CH's heartbeat in fds.R-1
  nor the CH's digest in fds.R-2, (2) none of the digests the DCH receives
  reflect awareness of the CH's heartbeat, AND (3) the DCH does not
  receive the health status update from the CH in fds.R-3.

Under the fail-stop model with no message creation/alteration, a *crashed*
node can produce none of the three kinds of evidence, so the rules never
miss a real failure ("the above rule is sufficient to guarantee that no
failed cluster members will go undetected") -- the property-based tests
state this as an invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, Mapping

import numpy as np

from repro.types import NodeId


@dataclass(frozen=True)
class DetectionInputs:
    """Everything a detecting authority observed during one execution.

    ``heartbeats`` -- senders whose R-1 heartbeats were received/overheard;
    ``digests`` -- digest sender -> the set of NIDs that digest listed;
    ``update_received_from`` -- the head whose R-3 update arrived (if any),
    used only by the CH-failure rule.
    """

    heartbeats: FrozenSet[NodeId]
    digests: Mapping[NodeId, FrozenSet[NodeId]]
    update_received_from: NodeId | None = None

    def evidence_of(self, target: NodeId, use_digests: bool = True) -> bool:
        """Whether any evidence of ``target``'s liveness was observed.

        Evidence = a direct heartbeat, a digest *from* the target, or
        (when ``use_digests``) any received digest listing the target.
        """
        if target in self.heartbeats:
            return True
        if target in self.digests:
            return True
        if use_digests and any(
            target in heard for heard in self.digests.values()
        ):
            return True
        return False


def apply_failure_rule(
    expected_members: AbstractSet[NodeId],
    inputs: DetectionInputs,
    use_digests: bool = True,
) -> FrozenSet[NodeId]:
    """The CH's failure detection rule over its expected members.

    ``expected_members`` are the cluster members the CH still believes
    operational (already-known failures are excluded by the caller).
    Returns the newly detected failed set.  With ``use_digests=False`` the
    digest clauses are disabled (the R-2 ablation), reducing the rule to a
    plain heartbeat timeout.
    """
    return frozenset(
        v
        for v in expected_members
        if not inputs.evidence_of(v, use_digests=use_digests)
    )


def apply_ch_failure_rule(
    ch: NodeId,
    inputs: DetectionInputs,
    use_digests: bool = True,
) -> bool:
    """The DCH's CH-failure detection rule.

    True iff all three conditions hold: no CH heartbeat, no CH digest, no
    digest witnessing the CH (condition folded into ``evidence_of``), and
    no R-3 health status update received from the CH.
    """
    if inputs.evidence_of(ch, use_digests=use_digests):
        return False
    if inputs.update_received_from == ch:
        return False
    return True


# ----------------------------------------------------------------------
# Array forms of the same rules.
#
# The round-level array engine (:mod:`repro.sim.array_engine`) evaluates
# the rules for *every* monitored node of *every* cluster in one masked
# reduction.  Keeping the masked forms here, next to the scalar rules
# they restate, makes the pair easy to audit: each function is the
# element-wise translation of ``evidence_of`` / ``apply_failure_rule`` /
# ``apply_ch_failure_rule`` over boolean arrays of any common shape.
# ----------------------------------------------------------------------
def evidence_mask(
    heartbeat: np.ndarray,
    digest_from: np.ndarray,
    witnessed: np.ndarray,
    use_digests: bool = True,
) -> np.ndarray:
    """Array form of :meth:`DetectionInputs.evidence_of`.

    Element ``[...]`` is True iff the authority saw a direct heartbeat,
    a digest *from* the node, or (when ``use_digests``) a digest
    witnessing the node's heartbeat.  With ``use_digests=False`` the
    callers pass all-False digest masks (R-2 never runs), so only the
    heartbeat term can fire -- same reduction as the scalar rule.
    """
    evidence = heartbeat | digest_from
    if use_digests:
        evidence = evidence | witnessed
    return evidence


def failure_rule_mask(
    expected: np.ndarray, evidence: np.ndarray
) -> np.ndarray:
    """Array form of :func:`apply_failure_rule`.

    ``expected`` marks the members the authority still believes
    operational; the result marks the newly detected failures.
    """
    return expected & ~evidence


def ch_failure_rule_mask(
    ch_evidence: np.ndarray, update_received: np.ndarray
) -> np.ndarray:
    """Array form of :func:`apply_ch_failure_rule` (one lane per cluster).

    True where the acting DCH saw neither evidence of the CH nor the
    CH's R-3 health status update.
    """
    return ~ch_evidence & ~update_received
