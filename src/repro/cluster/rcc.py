"""Random-competition-based declaration backoff (RCC).

Message loss during cluster formation can yield concurrent, conflicting CH
declarations; the paper (footnote 1) points to the RCC scheme of Xu/Gerla
for resolution.  Two pieces are implemented here:

- :func:`declaration_backoff` -- a small random delay before a qualified
  node broadcasts its CH declaration, so that among several simultaneous
  qualifiers the first declaration usually suppresses the rest within the
  same round.
- :func:`should_resign` -- the steady-state repair: a clusterhead that
  hears a *lower-NID* clusterhead within one hop resigns (lowest-ID wins),
  dissolving loss-induced adjacent-head conflicts.
"""

from __future__ import annotations

import numpy as np

from repro.types import NodeId
from repro.util.validation import check_positive


def declaration_backoff(
    rng: np.random.Generator, round_duration: float, fraction: float = 0.4
) -> float:
    """A uniform random delay in ``[0, fraction * round_duration)``.

    Kept well under the round duration so a backed-off declaration still
    lands, and is heard, within its round.
    """
    check_positive("round_duration", round_duration)
    if not 0.0 < fraction <= 0.9:
        raise ValueError(f"fraction must be in (0, 0.9], got {fraction}")
    return float(rng.uniform(0.0, fraction * round_duration))


def should_resign(my_id: NodeId, heard_head_id: NodeId) -> bool:
    """Whether a CH that hears another in-range CH must step down.

    The lowest NID keeps the cluster (the same total order the declaration
    policy uses), so exactly one of two conflicting heads resigns.
    """
    return heard_head_id < my_id
