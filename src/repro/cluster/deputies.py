"""Deputy clusterhead (DCH) selection -- feature F2.

The paper creates DCHs from the high population density so the FDS survives
CH failures: the highest-ranked DCH applies the CH-failure detection rule
and takes over on detection (Section 4.2).  The paper does not prescribe a
ranking function; we rank by *coverage*, because Section 4.2's reachability
discussion (Figure 2(a)) shows the failure mode of a DCH is being too far
from the CH to reach all members.  Candidates closer to the CH cover more
of the cluster disk, so:

rank key = (distance to CH ascending, in-cluster degree descending, NID
ascending) -- NID last, as the deterministic tiebreaker.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Sequence, Tuple

from repro.types import NodeId
from repro.util.geometry import Vec2
from repro.util.validation import check_int_at_least

#: Default number of deputies per cluster.  Two gives the takeover chain a
#: backup without meaningfully increasing R-3 traffic.
DEFAULT_DEPUTY_COUNT = 2


def rank_deputy_candidates(
    head: NodeId,
    members: FrozenSet[NodeId],
    positions: Mapping[NodeId, Vec2],
    in_cluster_degree: Mapping[NodeId, int],
) -> Tuple[NodeId, ...]:
    """All non-head members ordered by deputy fitness (best first)."""
    head_pos = positions[head]

    def key(nid: NodeId) -> Tuple[float, int, int]:
        return (
            positions[nid].distance_to(head_pos),
            -in_cluster_degree.get(nid, 0),
            int(nid),
        )

    return tuple(sorted((m for m in members if m != head), key=key))


def select_deputies(
    head: NodeId,
    members: FrozenSet[NodeId],
    positions: Mapping[NodeId, Vec2],
    in_cluster_degree: Mapping[NodeId, int],
    count: int = DEFAULT_DEPUTY_COUNT,
) -> Tuple[NodeId, ...]:
    """The top ``count`` deputy candidates (fewer if the cluster is small)."""
    check_int_at_least("count", count, 0)
    ranked = rank_deputy_candidates(head, members, positions, in_cluster_degree)
    return ranked[:count]


def takeover_order(deputies: Sequence[NodeId]) -> Tuple[NodeId, ...]:
    """The succession chain: highest-ranked deputy first.

    Exposed as its own function so the FDS and tests share one definition
    of "the authority that makes the decision" about a CH failure.
    """
    return tuple(deputies)
