"""Centralized (oracle) cluster construction from the ground-truth graph.

This computes the *fixed point* the distributed formation protocol converges
to under perfect links: iterative lowest-ID clustering (Baker/Ephremides,
Gerla/Tsai -- the algorithms the paper's own variant descends from), plus
the paper's redundancy roles:

1. Repeatedly: among unmarked nodes, every node whose NID is the lowest in
   its unmarked one-hop neighborhood declares itself CH; its unmarked
   neighbors join it as members.  Iterate until no unmarked node has an
   unmarked neighbor; remaining unmarked nodes are isolated (degree-0 among
   the uncovered) and stay unclustered.
2. Deputies (F2) per cluster via :mod:`repro.cluster.deputies`.
3. Boundaries (F1/F3): for every ordered pair of clusters whose disks
   overlap enough that the owner has a member adjacent to the peer CH, a
   :class:`Boundary` with a primary GW and ranked BGWs via
   :mod:`repro.cluster.gateways`.

The oracle is used to set up analysis/benchmark scenarios deterministically;
the distributed protocol in :mod:`repro.cluster.formation` is tested for
convergence *to this oracle's output* under perfect links.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.cluster.deputies import DEFAULT_DEPUTY_COUNT, select_deputies
from repro.cluster.gateways import DEFAULT_MAX_BACKUPS, select_boundary
from repro.cluster.state import Boundary, Cluster, ClusterLayout
from repro.errors import ClusteringError
from repro.topology.graph import UnitDiskGraph
from repro.types import NodeId


def lowest_id_partition(graph: UnitDiskGraph) -> Dict[NodeId, Set[NodeId]]:
    """The iterative lowest-ID partition: head -> member set (head included).

    Deterministic: iteration order is by NID everywhere.
    """
    unmarked: Set[NodeId] = set(graph.nodes())
    clusters: Dict[NodeId, Set[NodeId]] = {}
    while unmarked:
        # Heads this pass: unmarked nodes with the lowest NID within their
        # *unmarked* one-hop neighborhood.  min(unmarked) always qualifies,
        # so every pass makes progress and the loop terminates.
        heads = [
            nid
            for nid in sorted(unmarked)
            if all(
                other > nid
                for other in graph.neighbors(nid)
                if other in unmarked
            )
        ]
        for head in heads:
            if head not in unmarked:
                continue  # claimed as a member by an earlier head this pass
            if graph.degree(head) == 0:
                # Truly isolated (no neighbors at all): the paper leaves
                # such nodes unclustered.  Drop from unmarked; the caller
                # records them as unclustered.
                unmarked.discard(head)
                continue
            members = {head} | {
                nid for nid in graph.neighbors(head) if nid in unmarked
            }
            clusters[head] = members
            unmarked -= members
    return clusters


def build_clusters(
    graph: UnitDiskGraph,
    deputy_count: int = DEFAULT_DEPUTY_COUNT,
    max_backups: int = DEFAULT_MAX_BACKUPS,
) -> ClusterLayout:
    """Full oracle layout: partition + deputies + boundaries.

    Raises :class:`ClusteringError` if the graph is empty.
    """
    if len(graph) == 0:  # pragma: no cover - UnitDiskGraph forbids empty
        raise ClusteringError("cannot cluster an empty graph")
    partition = lowest_id_partition(graph)
    covered: Set[NodeId] = set()
    for members in partition.values():
        covered |= members
    unclustered = [nid for nid in graph.nodes() if nid not in covered]

    positions = graph.positions()
    clusters: List[Cluster] = []
    member_sets: Dict[NodeId, FrozenSet[NodeId]] = {}
    for head in sorted(partition):
        members = frozenset(partition[head])
        member_sets[head] = members
        in_cluster_degree = {
            nid: sum(1 for nb in graph.neighbors(nid) if nb in members)
            for nid in members
        }
        deputies = select_deputies(
            head, members, positions, in_cluster_degree, count=deputy_count
        )
        clusters.append(Cluster(head=head, members=members, deputies=deputies))

    boundaries: List[Boundary] = []
    heads = sorted(partition)
    neighbor_sets = {head: frozenset(graph.neighbors(head)) for head in heads}
    for owner in heads:
        for peer in heads:
            if peer == owner:
                continue
            boundary = select_boundary(
                owner_head=owner,
                peer_head=peer,
                owner_members=member_sets[owner],
                peer_head_neighbors=neighbor_sets[peer],
                positions=positions,
                max_backups=max_backups,
            )
            if boundary is not None:
                boundaries.append(boundary)

    return ClusterLayout(
        clusters=clusters,
        boundaries=boundaries,
        graph=graph,
        unclustered=unclustered,
    )
