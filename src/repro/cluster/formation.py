"""The distributed cluster-formation protocol (Section 3, features F1-F5).

Each formation *iteration* is a fixed schedule of six rounds of duration
``Thop`` (the same per-round timeout discipline as the FDS):

====  =====================================================================
R0    every node broadcasts a :class:`FormationHeartbeat` carrying its
      marked bit and, if it is a CH, its head flag (one-hop probing).
R1    every unmarked node whose NID is the lowest among the *unmarked*
      nodes it heard (itself included) declares itself CH after a random
      RCC backoff, unless a lower-NID declaration is heard first.
R2    unmarked nodes that heard declarations (or head-flagged heartbeats)
      send a :class:`JoinRequest` to the lowest-NID head they heard.
R3    each CH broadcasts a :class:`ClusterAnnouncement` with its member
      list and ranked deputies; members that hear it confirm affiliation
      and mark themselves.
R4    confirmed members that heard *other* heads this iteration send a
      :class:`GatewayCandidacy` to their own CH (feature F1 candidates).
R5    each CH broadcasts one :class:`BoundaryAssignment` per neighboring
      cluster, naming the primary GW and ranked BGWs (features F2/F3).
====  =====================================================================

Feature F4 (no termination rule) is modeled by simply running as many
iterations as the caller asks for; an iteration in which nothing is
unmarked degenerates to heartbeats plus announcements, costing nothing new.
Feature F5 (sharing the first round with the FDS) is realized by the
maintenance layer (:mod:`repro.cluster.maintenance`), which feeds FDS
heartbeats from unmarked nodes back into admission.

Loss-induced conflicts (two adjacent CHs) are repaired by the RCC rule: a
CH that hears a lower-NID CH resigns and dissolves its cluster
(:mod:`repro.cluster.rcc`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cluster import rcc
from repro.cluster.state import Boundary, Cluster, ClusterLayout
from repro.errors import ClusteringError
from repro.sim.medium import Envelope
from repro.sim.network import Network
from repro.sim.node import Protocol
from repro.types import NodeId
from repro.util.validation import check_int_at_least, check_positive

# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FormationHeartbeat:
    """One-hop probe: who is out there, and are they marked / a head."""

    sender: NodeId
    marked: bool
    is_head: bool


@dataclass(frozen=True, slots=True)
class ChDeclaration:
    """A node announces itself as clusterhead."""

    sender: NodeId


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """An unmarked node asks to join ``head``'s cluster."""

    sender: NodeId
    head: NodeId


@dataclass(frozen=True, slots=True)
class ClusterAnnouncement:
    """The CH's cluster-organization broadcast."""

    head: NodeId
    members: FrozenSet[NodeId]
    deputies: Tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class GatewayCandidacy:
    """A member tells its CH which foreign heads it can hear."""

    sender: NodeId
    head: NodeId
    foreign_heads: FrozenSet[NodeId]


@dataclass(frozen=True, slots=True)
class BoundaryAssignment:
    """The CH's ranked forwarder list toward one neighboring cluster."""

    head: NodeId
    peer: NodeId
    forwarders: Tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class ClusterDissolve:
    """A resigning CH releases its members (RCC conflict repair)."""

    head: NodeId


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FormationConfig:
    """Tuning of the formation protocol.

    ``thop`` must exceed the medium's maximum one-hop delay so that every
    message sent at a round's start is delivered (if not lost) within the
    round.
    """

    thop: float = 0.5
    iterations: int = 3
    deputy_count: int = 2
    max_backups: int = 2
    #: A node that has heard *any* clusterhead recently will not declare
    #: itself CH until this many consecutive iterations pass with no head
    #: heard.  This time redundancy prevents a covered node from spuriously
    #: declaring (and conflicting) just because one iteration's head
    #: heartbeats were lost.
    declaration_patience: int = 2
    #: Upper bound of the RCC declaration backoff as a fraction of a
    #: round (see :func:`repro.cluster.rcc.declaration_backoff`).  Must
    #: leave ``(1 - backoff_fraction) * thop`` of slack above the
    #: medium's max one-hop delay so a backed-off declaration still
    #: lands within its round.
    backoff_fraction: float = 0.4

    #: Rounds per iteration (fixed by the protocol structure).
    ROUNDS_PER_ITERATION: int = field(default=6, init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("thop", self.thop)
        check_int_at_least("iterations", self.iterations, 1)
        check_int_at_least("deputy_count", self.deputy_count, 0)
        check_int_at_least("max_backups", self.max_backups, 0)
        check_int_at_least("declaration_patience", self.declaration_patience, 1)
        if not 0.0 < self.backoff_fraction <= 0.9:
            raise ClusteringError(
                "backoff_fraction must be in (0, 0.9], got "
                f"{self.backoff_fraction}"
            )

    @property
    def iteration_duration(self) -> float:
        return self.ROUNDS_PER_ITERATION * self.thop

    def total_duration(self) -> float:
        """Simulated time needed to run all iterations (plus slack)."""
        return self.iterations * self.iteration_duration + self.thop


# ----------------------------------------------------------------------
# The per-node protocol
# ----------------------------------------------------------------------


class FormationProtocol(Protocol):
    """Per-node cluster-formation behaviour."""

    name = "formation"

    def __init__(self, config: FormationConfig, rng_seed_stream) -> None:
        super().__init__()
        self.config = config
        self._rng = rng_seed_stream
        # Durable role state.
        self.is_head = False
        self.confirmed_head: Optional[NodeId] = None
        self.marked = False
        self.announced_members: FrozenSet[NodeId] = frozenset()
        self.announced_deputies: Tuple[NodeId, ...] = ()
        #: For heads: peer head -> ranked forwarders (as assigned in R5).
        self.boundary_assignments: Dict[NodeId, Tuple[NodeId, ...]] = {}
        #: For members: peer head -> (my rank, backup count) duties heard.
        self.my_gateway_duties: Dict[NodeId, Tuple[int, int]] = {}
        # Per-iteration scratch state.
        self._heard_unmarked: Set[NodeId] = set()
        self._heard_heads: Set[NodeId] = set()
        self._declarations_heard: Set[NodeId] = set()
        self._join_requests: Set[NodeId] = set()
        self._members: Set[NodeId] = set()
        self._candidacies: Dict[NodeId, Set[NodeId]] = {}
        self._declared_this_round = False
        self._pending_declaration = None
        # Iterations in a row with no clusterhead heard (starts at the
        # patience threshold so iteration 1 may declare).
        self._no_head_iterations = config.declaration_patience

    # -- lifecycle ------------------------------------------------------
    def start(self, first_epoch: float) -> None:
        """Schedule all iterations starting at ``first_epoch``."""
        assert self.node is not None
        delay = first_epoch - self.node.sim.now
        for i in range(self.config.iterations):
            offset = delay + i * self.config.iteration_duration
            self._schedule_iteration(offset)

    def _schedule_iteration(self, offset: float) -> None:
        assert self.node is not None
        timers = self.node.timers
        thop = self.config.thop
        timers.after(offset + 0 * thop, self._round0_heartbeat)
        timers.after(offset + 1 * thop, self._round1_declare)
        timers.after(offset + 2 * thop, self._round2_join)
        timers.after(offset + 3 * thop, self._round3_announce)
        timers.after(offset + 4 * thop, self._round4_candidacy)
        timers.after(offset + 5 * thop, self._round5_boundaries)

    # -- rounds ---------------------------------------------------------
    def _round0_heartbeat(self) -> None:
        assert self.node is not None
        self._heard_unmarked = set()
        self._heard_heads = set()
        self._declarations_heard = set()
        self._join_requests = set()
        self._candidacies = {}
        self._declared_this_round = False
        self.node.send(
            FormationHeartbeat(
                sender=self.node.node_id, marked=self.marked, is_head=self.is_head
            )
        )

    def _round1_declare(self) -> None:
        assert self.node is not None
        if self.marked:
            return
        my_id = self.node.node_id
        if self._heard_heads:
            self._no_head_iterations = 0
        else:
            self._no_head_iterations += 1
        if any(n < my_id for n in self._heard_unmarked):
            return
        if any(h < my_id for h in self._heard_heads):
            # A lower-NID clusterhead is in range: lowest-ID policy says we
            # join it (round R2) rather than declare a conflicting cluster.
            return
        if self._no_head_iterations < self.config.declaration_patience:
            # We heard a head recently; this iteration's silence is more
            # likely message loss than a genuine coverage hole.  Wait.
            return
        # Qualified: lowest NID in the unmarked neighborhood heard.  Apply
        # the RCC backoff; a lower-NID declaration heard in the meantime
        # suppresses ours.
        backoff = rcc.declaration_backoff(
            self._rng, self.config.thop, self.config.backoff_fraction
        )
        self._pending_declaration = self.node.timers.after(
            backoff, self._fire_declaration
        )

    def _fire_declaration(self) -> None:
        assert self.node is not None
        if self.marked:
            return
        my_id = self.node.node_id
        if any(d < my_id for d in self._declarations_heard):
            return
        if any(h < my_id for h in self._heard_heads):
            return
        self.is_head = True
        self.marked = True
        self.confirmed_head = self.node.node_id
        self._members = {self.node.node_id}
        self._declared_this_round = True
        self.node.send(ChDeclaration(sender=self.node.node_id))

    def _round2_join(self) -> None:
        assert self.node is not None
        if self.marked:
            return
        heads_available = self._declarations_heard | self._heard_heads
        if not heads_available:
            return
        target = min(heads_available)
        self.node.send(JoinRequest(sender=self.node.node_id, head=target), recipient=target)

    def _round3_announce(self) -> None:
        assert self.node is not None
        if not self.is_head:
            return
        self._members |= self._join_requests
        self._members.add(self.node.node_id)
        members = frozenset(self._members)
        # Distributed deputy ranking: the CH knows only NIDs, so deputies
        # are the lowest-NID members (a deterministic choice every member
        # can verify from the announcement).
        deputies = tuple(
            sorted(m for m in members if m != self.node.node_id)
        )[: self.config.deputy_count]
        self.announced_members = members
        self.announced_deputies = deputies
        self.node.send(
            ClusterAnnouncement(
                head=self.node.node_id, members=members, deputies=deputies
            )
        )

    def _round4_candidacy(self) -> None:
        assert self.node is not None
        if self.is_head or self.confirmed_head is None:
            return
        foreign = {h for h in (self._heard_heads | self._declarations_heard)
                   if h != self.confirmed_head}
        if not foreign:
            return
        self.node.send(
            GatewayCandidacy(
                sender=self.node.node_id,
                head=self.confirmed_head,
                foreign_heads=frozenset(foreign),
            ),
            recipient=self.confirmed_head,
        )

    def _round5_boundaries(self) -> None:
        assert self.node is not None
        if not self.is_head:
            return
        per_peer: Dict[NodeId, List[NodeId]] = {}
        for candidate, peers in sorted(self._candidacies.items()):
            for peer in peers:
                per_peer.setdefault(peer, []).append(candidate)
        for peer, candidates in sorted(per_peer.items()):
            ranked = tuple(sorted(candidates))[: 1 + self.config.max_backups]
            self.boundary_assignments[peer] = ranked
            self.node.send(
                BoundaryAssignment(head=self.node.node_id, peer=peer, forwarders=ranked)
            )

    # -- receive --------------------------------------------------------
    def on_receive(self, envelope: Envelope) -> None:
        assert self.node is not None
        payload = envelope.payload
        if isinstance(payload, FormationHeartbeat):
            if not payload.marked:
                self._heard_unmarked.add(payload.sender)
            if payload.is_head:
                self._heard_heads.add(payload.sender)
                self._maybe_resign(payload.sender)
        elif isinstance(payload, ChDeclaration):
            self._declarations_heard.add(payload.sender)
            self._maybe_resign(payload.sender)
        elif isinstance(payload, JoinRequest):
            if self.is_head and payload.head == self.node.node_id:
                self._join_requests.add(payload.sender)
        elif isinstance(payload, ClusterAnnouncement):
            self._on_announcement(payload)
        elif isinstance(payload, GatewayCandidacy):
            if self.is_head and payload.head == self.node.node_id:
                if payload.sender in self._members:
                    self._candidacies.setdefault(payload.sender, set()).update(
                        payload.foreign_heads
                    )
        elif isinstance(payload, BoundaryAssignment):
            self._on_boundary_assignment(payload)
        elif isinstance(payload, ClusterDissolve):
            if self.confirmed_head == payload.head and not self.is_head:
                self._become_unmarked()

    def _on_announcement(self, announcement: ClusterAnnouncement) -> None:
        assert self.node is not None
        my_id = self.node.node_id
        self._heard_heads.add(announcement.head)
        if self.is_head:
            # Overhearing a lower head's announcement is as good as its
            # heartbeat for conflict detection (time redundancy).
            self._maybe_resign(announcement.head)
            return
        if my_id in announcement.members:
            self.confirmed_head = announcement.head
            self.marked = True
            self.announced_members = announcement.members
            self.announced_deputies = announcement.deputies

    def _on_boundary_assignment(self, assignment: BoundaryAssignment) -> None:
        assert self.node is not None
        if assignment.head != self.confirmed_head:
            return
        my_id = self.node.node_id
        if my_id in assignment.forwarders:
            rank = assignment.forwarders.index(my_id)
            self.my_gateway_duties[assignment.peer] = (
                rank,
                len(assignment.forwarders) - 1,
            )
        else:
            self.my_gateway_duties.pop(assignment.peer, None)

    # -- RCC repair -----------------------------------------------------
    def _maybe_resign(self, heard_head: NodeId) -> None:
        assert self.node is not None
        if not self.is_head:
            return
        if rcc.should_resign(self.node.node_id, heard_head):
            self.node.send(ClusterDissolve(head=self.node.node_id))
            self._become_unmarked()

    def _become_unmarked(self) -> None:
        self.is_head = False
        self.marked = False
        self.confirmed_head = None
        self.announced_members = frozenset()
        self.announced_deputies = ()
        self.boundary_assignments = {}
        self.my_gateway_duties = {}
        self._members = set()


# ----------------------------------------------------------------------
# Driver + layout extraction
# ----------------------------------------------------------------------


def install_formation(network: Network, config: FormationConfig) -> Dict[NodeId, FormationProtocol]:
    """Attach a :class:`FormationProtocol` to every node; returns them."""
    protocols: Dict[NodeId, FormationProtocol] = {}
    for node_id, node in sorted(network.nodes.items()):
        protocol = FormationProtocol(
            config, network.rngs.stream("formation", int(node_id))
        )
        node.add_protocol(protocol)
        protocols[node_id] = protocol
    return protocols


def extract_layout(
    protocols: Dict[NodeId, FormationProtocol],
    config: FormationConfig,
) -> ClusterLayout:
    """Build a :class:`ClusterLayout` from converged per-node state.

    Affiliation is taken from each *member's own* confirmed head (the
    node-side truth), which guarantees feature F3 (exactly one affiliation)
    even if a CH's member list drifted due to lost announcements.
    """
    heads = {nid for nid, p in protocols.items() if p.is_head}
    affiliation: Dict[NodeId, NodeId] = {}
    for nid, protocol in protocols.items():
        if protocol.is_head:
            affiliation[nid] = nid
        elif protocol.confirmed_head is not None and protocol.confirmed_head in heads:
            affiliation[nid] = protocol.confirmed_head

    clusters: List[Cluster] = []
    for head in sorted(heads):
        members = frozenset(
            nid for nid, h in affiliation.items() if h == head
        ) | {head}
        deputies = tuple(
            d for d in protocols[head].announced_deputies if d in members
        )
        clusters.append(Cluster(head=head, members=members, deputies=deputies))

    boundaries: List[Boundary] = []
    for head in sorted(heads):
        members = frozenset(nid for nid, h in affiliation.items() if h == head)
        for peer, forwarders in sorted(protocols[head].boundary_assignments.items()):
            if peer not in heads:
                continue
            usable = tuple(f for f in forwarders if affiliation.get(f) == head)
            if not usable:
                continue
            boundaries.append(
                Boundary(
                    owner=head,
                    peer=peer,
                    gateway=usable[0],
                    backups=usable[1:],
                )
            )

    unclustered = [nid for nid in protocols if nid not in affiliation]
    return ClusterLayout(
        clusters=clusters, boundaries=boundaries, unclustered=unclustered
    )


def run_formation(
    network: Network,
    config: Optional[FormationConfig] = None,
    start_time: float = 0.0,
) -> ClusterLayout:
    """Install, run, and extract: the one-call formation entry point."""
    cfg = config if config is not None else FormationConfig()
    if network.medium.max_delay >= cfg.thop:
        raise ClusteringError(
            "formation thop must exceed the medium's max one-hop delay "
            f"({cfg.thop} <= {network.medium.max_delay})"
        )
    protocols = install_formation(network, cfg)
    for protocol in protocols.values():
        protocol.start(start_time)
    network.sim.run_until(start_time + cfg.total_duration())
    return extract_layout(protocols, cfg)
