"""Cluster structure data model.

A :class:`Cluster` is the unit the FDS executes in: a clusterhead (CH), its
one-hop members, a ranked list of deputy clusterheads (DCHs, feature F2),
and -- per neighboring cluster -- a :class:`Boundary` holding the primary
gateway (GW) and ranked backup gateways (BGWs).

:class:`ClusterLayout` is the whole-network structure; it validates the
paper's structural invariants on construction:

- every member of a cluster is a one-hop neighbor of its CH (clusters map
  to unit disks, Section 3);
- every node is affiliated with exactly one cluster (feature F3 -- this
  includes gateways, which older algorithms left unaffiliated);
- deputies and gateways are members of the cluster they serve.

:class:`LocalClusterView` is the slice of the layout a single node is
allowed to know -- what the formation protocol's announcements told it.
The FDS protocol consumes only local views, never the global layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import ClusteringError
from repro.topology.graph import UnitDiskGraph
from repro.types import NodeId, NodeRole


@dataclass(frozen=True)
class Boundary:
    """The forwarding roles between two neighboring clusters.

    ``gateway`` is the primary GW; ``backups`` are the BGWs in rank order
    (rank 1 first -- rank k waits ``k * 2*Thop`` before stepping in,
    Section 4.3).  All of them belong to *one* of the two clusters
    (``owner``), per feature F3.
    """

    owner: NodeId
    peer: NodeId
    gateway: NodeId
    backups: Tuple[NodeId, ...] = ()

    @property
    def all_forwarders(self) -> Tuple[NodeId, ...]:
        """GW first, then BGWs in rank order."""
        return (self.gateway, *self.backups)

    @property
    def backup_count(self) -> int:
        """``n`` in the paper's standby-timeout formulas."""
        return len(self.backups)


@dataclass(frozen=True)
class Cluster:
    """One cluster: CH, members (CH included), ranked deputies."""

    head: NodeId
    members: FrozenSet[NodeId]
    deputies: Tuple[NodeId, ...] = ()

    def __post_init__(self) -> None:
        if self.head not in self.members:
            raise ClusteringError(
                f"clusterhead {self.head} must be in its own member set"
            )
        for deputy in self.deputies:
            if deputy == self.head or deputy not in self.members:
                raise ClusteringError(
                    f"deputy {deputy} of cluster {self.head} must be a "
                    "non-head member"
                )
        if len(set(self.deputies)) != len(self.deputies):
            raise ClusteringError(f"duplicate deputies in cluster {self.head}")

    @property
    def size(self) -> int:
        """Total population ``N`` of the cluster (CH included)."""
        return len(self.members)

    @property
    def ordinary_members(self) -> FrozenSet[NodeId]:
        """Members other than the CH."""
        return self.members - {self.head}

    @property
    def primary_deputy(self) -> Optional[NodeId]:
        """The highest-ranked DCH (the CH-failure detection authority)."""
        return self.deputies[0] if self.deputies else None


@dataclass(frozen=True)
class LocalClusterView:
    """What one node knows about its own cluster and boundary duties."""

    node_id: NodeId
    role: NodeRole
    head: NodeId
    members: FrozenSet[NodeId]
    deputies: Tuple[NodeId, ...]
    #: For GW/BGW nodes: peer CH -> (my rank, boundary backup count n).
    #: Rank 0 is the primary gateway; ranks 1..n are BGWs.
    gateway_duties: Mapping[NodeId, Tuple[int, int]] = field(default_factory=dict)
    #: For CH nodes: peer CH -> number of forwarders (GW + BGWs) on the
    #: outgoing boundary.  Drives the origin's implicit-ack watch (Fig. 3).
    head_boundaries: Mapping[NodeId, int] = field(default_factory=dict)

    @property
    def is_head(self) -> bool:
        return self.node_id == self.head

    @property
    def is_primary_deputy(self) -> bool:
        return bool(self.deputies) and self.deputies[0] == self.node_id


class ClusterLayout:
    """The network-wide cluster structure, with invariant validation."""

    def __init__(
        self,
        clusters: Iterable[Cluster],
        boundaries: Iterable[Boundary] = (),
        graph: Optional[UnitDiskGraph] = None,
        unclustered: Iterable[NodeId] = (),
    ) -> None:
        self.clusters: Dict[NodeId, Cluster] = {}
        for cluster in clusters:
            if cluster.head in self.clusters:
                raise ClusteringError(f"duplicate cluster head {cluster.head}")
            self.clusters[cluster.head] = cluster
        self.unclustered: FrozenSet[NodeId] = frozenset(unclustered)

        self._affiliation: Dict[NodeId, NodeId] = {}
        for cluster in self.clusters.values():
            for member in cluster.members:
                if member in self._affiliation:
                    raise ClusteringError(
                        f"node {member} is affiliated with two clusters "
                        f"({self._affiliation[member]} and {cluster.head}); "
                        "feature F3 requires exactly one"
                    )
                self._affiliation[member] = cluster.head
        overlap = self.unclustered & set(self._affiliation)
        if overlap:
            raise ClusteringError(
                f"nodes both clustered and unclustered: {sorted(overlap)}"
            )

        self.boundaries: Dict[Tuple[NodeId, NodeId], Boundary] = {}
        for boundary in boundaries:
            self._add_boundary(boundary)

        if graph is not None:
            self._validate_against_graph(graph)

    # ------------------------------------------------------------------
    def _add_boundary(self, boundary: Boundary) -> None:
        if boundary.owner not in self.clusters:
            raise ClusteringError(f"boundary owner {boundary.owner} is not a CH")
        if boundary.peer not in self.clusters:
            raise ClusteringError(f"boundary peer {boundary.peer} is not a CH")
        owner_cluster = self.clusters[boundary.owner]
        for forwarder in boundary.all_forwarders:
            if forwarder not in owner_cluster.members:
                raise ClusteringError(
                    f"forwarder {forwarder} on boundary "
                    f"{boundary.owner}->{boundary.peer} is not a member of "
                    f"its owning cluster {boundary.owner}"
                )
        key = (boundary.owner, boundary.peer)
        if key in self.boundaries:
            raise ClusteringError(f"duplicate boundary {key}")
        self.boundaries[key] = boundary

    def _validate_against_graph(self, graph: UnitDiskGraph) -> None:
        for cluster in self.clusters.values():
            for member in cluster.ordinary_members:
                if not graph.are_neighbors(cluster.head, member):
                    raise ClusteringError(
                        f"member {member} is not a one-hop neighbor of its "
                        f"CH {cluster.head}; clusters must map to unit disks"
                    )
        for (owner, peer), boundary in self.boundaries.items():
            for forwarder in boundary.all_forwarders:
                if not graph.are_neighbors(forwarder, peer):
                    raise ClusteringError(
                        f"forwarder {forwarder} on boundary {owner}->{peer} "
                        f"cannot reach the peer CH {peer}"
                    )
        covered = set(self._affiliation) | set(self.unclustered)
        missing = set(graph.nodes()) - covered
        if missing:
            raise ClusteringError(
                f"layout does not account for nodes {sorted(missing)}"
            )

    # ------------------------------------------------------------------
    @property
    def heads(self) -> Tuple[NodeId, ...]:
        """All clusterhead NIDs, sorted."""
        return tuple(sorted(self.clusters))

    def cluster_of(self, node_id: NodeId) -> Cluster:
        """The cluster a node is affiliated with."""
        try:
            return self.clusters[self._affiliation[node_id]]
        except KeyError:
            raise ClusteringError(f"node {node_id} is not clustered") from None

    def is_clustered(self, node_id: NodeId) -> bool:
        return node_id in self._affiliation

    def role_of(self, node_id: NodeId) -> NodeRole:
        """The role a node plays in the layout.

        A node with several roles reports the most specific one in the
        order CH > GW > BGW > DCH > OM (a deputy that is also a gateway is
        reported as a gateway; its deputy rank is still visible in the
        cluster's ``deputies`` tuple).
        """
        if node_id in self.unclustered:
            return NodeRole.UNMARKED
        cluster = self.cluster_of(node_id)
        if node_id == cluster.head:
            return NodeRole.CH
        ranks = self._gateway_ranks(node_id, cluster.head)
        if any(rank == 0 for rank, _n in ranks.values()):
            return NodeRole.GW
        if ranks:
            return NodeRole.BGW
        if node_id in cluster.deputies:
            return NodeRole.DCH
        return NodeRole.OM

    def _gateway_ranks(
        self, node_id: NodeId, head: NodeId
    ) -> Dict[NodeId, Tuple[int, int]]:
        duties: Dict[NodeId, Tuple[int, int]] = {}
        for (owner, peer), boundary in self.boundaries.items():
            if owner != head:
                continue
            forwarders = boundary.all_forwarders
            if node_id in forwarders:
                duties[peer] = (forwarders.index(node_id), boundary.backup_count)
        return duties

    def local_view(self, node_id: NodeId) -> LocalClusterView:
        """The per-node knowledge slice the FDS protocol is given."""
        if node_id in self.unclustered:
            return LocalClusterView(
                node_id=node_id,
                role=NodeRole.UNMARKED,
                head=node_id,
                members=frozenset({node_id}),
                deputies=(),
            )
        cluster = self.cluster_of(node_id)
        head_boundaries: Dict[NodeId, int] = {}
        if node_id == cluster.head:
            for (owner, peer), boundary in self.boundaries.items():
                if owner == cluster.head:
                    head_boundaries[peer] = len(boundary.all_forwarders)
        return LocalClusterView(
            node_id=node_id,
            role=self.role_of(node_id),
            head=cluster.head,
            members=cluster.members,
            deputies=cluster.deputies,
            gateway_duties=self._gateway_ranks(node_id, cluster.head),
            head_boundaries=head_boundaries,
        )

    def neighboring_heads(self, head: NodeId) -> Tuple[NodeId, ...]:
        """CHs this cluster has an outgoing boundary to."""
        return tuple(
            sorted(peer for (owner, peer) in self.boundaries if owner == head)
        )

    def clustered_nodes(self) -> Tuple[NodeId, ...]:
        """All nodes affiliated with some cluster, sorted."""
        return tuple(sorted(self._affiliation))

    def summary(self) -> Dict[str, float]:
        """Structural statistics, for reports and sanity checks."""
        sizes = [c.size for c in self.clusters.values()]
        return {
            "clusters": float(len(self.clusters)),
            "clustered_nodes": float(len(self._affiliation)),
            "unclustered_nodes": float(len(self.unclustered)),
            "min_cluster_size": float(min(sizes)) if sizes else 0.0,
            "mean_cluster_size": float(sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_cluster_size": float(max(sizes)) if sizes else 0.0,
            "boundaries": float(len(self.boundaries)),
            "mean_backups_per_boundary": (
                float(
                    sum(b.backup_count for b in self.boundaries.values())
                    / len(self.boundaries)
                )
                if self.boundaries
                else 0.0
            ),
        }
