"""Periodic cluster re-formation for mobile fields (extension hook).

The paper keeps hosts stationary "for simplicity" but notes that "as sound
clustering algorithms will support cluster and routing stability in mobile
ad hoc wireless settings, our failure detection framework can be extended
accordingly to accommodate host migration."  This module provides that
extension for slow mobility: a :class:`ReclusteringPolicy` that, between
FDS executions, rebuilds the cluster layout from current positions and
re-installs fresh local views on every live protocol.

This is the *oracle* variant (positions read from the medium), suitable
for studying how much mobility the FDS tolerates between re-formations;
a fully distributed variant would re-run
:class:`~repro.cluster.formation.FormationProtocol` iterations instead
(the F4 open end exists precisely for that).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.geometric import build_clusters
from repro.cluster.state import ClusterLayout
from repro.errors import ConfigurationError
from repro.fds.intercluster import InterclusterForwarder
from repro.fds.service import FdsDeployment
from repro.topology.graph import UnitDiskGraph
from repro.types import NodeId


class ReclusteringPolicy:
    """Rebuilds the layout from live positions and refreshes the FDS."""

    def __init__(self, deployment: FdsDeployment) -> None:
        self.deployment = deployment
        self.reclusterings = 0

    def recluster_now(self) -> ClusterLayout:
        """Rebuild from current positions; refresh every live protocol.

        Failure knowledge (each node's :class:`ReportHistory`) is
        preserved -- re-formation changes *structure*, not what the nodes
        learned.  Crashed nodes are left out of the new layout entirely.
        """
        network = self.deployment.network
        positions = {
            nid: network.medium.position_of(nid)
            for nid in network.operational_ids()
        }
        if not positions:
            raise ConfigurationError("no operational nodes left to cluster")
        graph = UnitDiskGraph(
            positions, radius=network.medium.transmission_range
        )
        layout = build_clusters(graph)
        for node_id in positions:
            protocol = self.deployment.protocols[node_id]
            view = layout.local_view(node_id)
            protocol.head = view.head
            protocol.members = set(view.members)
            protocol.deputies = list(view.deputies)
            protocol.marked = view.role.is_marked
            protocol._ever_members |= set(view.members)
            if protocol.inter is not None:
                protocol.inter.reset()
                protocol.inter.duties = dict(view.gateway_duties)
                protocol.inter.head_boundaries = dict(view.head_boundaries)
        self.deployment.layout = layout
        self.reclusterings += 1
        return layout

    def run_with_reclustering(
        self, executions: int, recluster_every: int
    ) -> None:
        """Run ``executions`` total, re-forming every ``recluster_every``.

        Mobility models installed on the engine move nodes during the
        heartbeat gaps; each re-formation snapshots the new geometry.
        """
        if recluster_every < 1:
            raise ConfigurationError(
                f"recluster_every must be >= 1, got {recluster_every}"
            )
        remaining = executions
        while remaining > 0:
            batch = min(recluster_every, remaining)
            self.deployment.run_executions(batch)
            remaining -= batch
            if remaining > 0:
                self.recluster_now()
