"""Cluster-level backbone graph utilities.

Inter-cluster dissemination (failure reports, aggregation partials) flows
over the *cluster adjacency graph*: heads are vertices, boundaries are
edges.  These helpers answer the structural questions users of the
library keep needing:

- which clusters can exchange reports at all (components);
- how many across-cluster hops news needs (distances / diameter), i.e.
  how many FDS executions until field-wide completeness;
- whether a field is backbone-connected before an experiment relies on it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cluster.state import ClusterLayout
from repro.errors import ClusteringError
from repro.types import NodeId


def backbone_edges(layout: ClusterLayout) -> FrozenSet[Tuple[NodeId, NodeId]]:
    """Undirected head-to-head edges, one per boundary pair."""
    edges: Set[Tuple[NodeId, NodeId]] = set()
    for owner, peer in layout.boundaries:
        edges.add((min(owner, peer), max(owner, peer)))
    return frozenset(edges)


def backbone_neighbors(layout: ClusterLayout) -> Dict[NodeId, Tuple[NodeId, ...]]:
    """Head -> sorted adjacent heads over the backbone."""
    adjacency: Dict[NodeId, Set[NodeId]] = {h: set() for h in layout.heads}
    for a, b in backbone_edges(layout):
        adjacency[a].add(b)
        adjacency[b].add(a)
    return {h: tuple(sorted(n)) for h, n in adjacency.items()}


def backbone_components(layout: ClusterLayout) -> List[FrozenSet[NodeId]]:
    """Connected components of heads, largest first.

    Clusters in different components cannot exchange failure reports --
    the paper defers bridging them to an inter-cluster routing protocol.
    """
    neighbors = backbone_neighbors(layout)
    unvisited = set(layout.heads)
    components: List[FrozenSet[NodeId]] = []
    while unvisited:
        start = min(unvisited)
        seen = {start}
        queue = deque([start])
        unvisited.discard(start)
        while queue:
            current = queue.popleft()
            for nxt in neighbors[current]:
                if nxt in unvisited:
                    unvisited.discard(nxt)
                    seen.add(nxt)
                    queue.append(nxt)
        components.append(frozenset(seen))
    components.sort(key=lambda c: (-len(c), min(c)))
    return components


def is_backbone_connected(layout: ClusterLayout) -> bool:
    """Whether every cluster can reach every other over boundaries."""
    return len(backbone_components(layout)) <= 1


def backbone_distances(
    layout: ClusterLayout, source: NodeId
) -> Dict[NodeId, int]:
    """Across-cluster hop counts from ``source``'s head (BFS).

    A failure detected in the source cluster needs at least this many
    boundary crossings to reach each other cluster -- and therefore at
    most that many FDS executions (each crossing completes within one).
    Unreachable heads are absent from the result.
    """
    if source not in layout.clusters:
        raise ClusteringError(f"{source} is not a clusterhead")
    neighbors = backbone_neighbors(layout)
    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for nxt in neighbors[current]:
            if nxt not in distances:
                distances[nxt] = distances[current] + 1
                queue.append(nxt)
    return distances


def backbone_diameter(layout: ClusterLayout) -> Optional[int]:
    """Longest shortest head-to-head path (None if disconnected).

    The worst-case number of executions for field-wide completeness of a
    single failure report.
    """
    heads = layout.heads
    if not heads:
        return None
    worst = 0
    for head in heads:
        distances = backbone_distances(layout, head)
        if len(distances) != len(heads):
            return None
        worst = max(worst, max(distances.values()))
    return worst
