"""Open-ended cluster maintenance -- features F4/F5.

The formation algorithm "intentionally leaves an open end": it never stops
iterating, and after the first iteration its first round *merges* with the
FDS heartbeat round.  Concretely, at every FDS epoch both marked and
unmarked nodes transmit heartbeats, and the heartbeat's one-bit mark
indicator is interpreted three ways (Section 3, F5):

- marked sender, known member  -> FDS liveness evidence (normal case);
- unmarked sender heard by a CH -> a *membership subscription*: the CH
  admits the node and announces the new membership in its next R-3 update;
- unmarked sender outside all clusters -> drives new cluster formation
  (handled by re-running formation iterations, not by the FDS).

:class:`AdmissionBook` is the CH-side bookkeeping for the second case; the
FDS service consults it each execution.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.types import NodeId


class AdmissionBook:
    """CH-side tracking of unmarked heartbeats awaiting admission.

    A node is admitted after its unmarked heartbeat is heard by the CH.
    Admission is applied at the next R-3 update so that the whole cluster
    learns the new membership atomically with the health status.
    """

    def __init__(self) -> None:
        self._pending: Set[NodeId] = set()
        self.admitted_total = 0

    def note_unmarked_heartbeat(self, sender: NodeId) -> None:
        """Record a subscription request (idempotent within an epoch)."""
        self._pending.add(sender)

    def drain(self, current_members: FrozenSet[NodeId]) -> FrozenSet[NodeId]:
        """Admissions to announce now; clears the pending set.

        Nodes already in the membership are dropped (their subscription
        raced with an earlier admission).
        """
        admissions = frozenset(self._pending - current_members)
        self._pending.clear()
        self.admitted_total += len(admissions)
        return admissions

    @property
    def pending_count(self) -> int:
        return len(self._pending)
