"""Gateway (GW) and backup gateway (BGW) selection -- features F1-F3.

A gateway between clusters C and C' is a node that is a one-hop neighbor of
*both* CHs (the paper prefers this "directly connected" kind and avoids the
two-intermediate-node kind "because it may reduce robustness").  Feature F3
affiliates every gateway with exactly one cluster -- here, the cluster it is
already a member of -- so each boundary is *owned* by one side: the owner
cluster's GW/BGWs forward reports outward across that boundary.

For a boundary owned by C toward C', candidates are the members of C that
are neighbors of C''s CH.  The primary GW is the candidate with the best
(lowest) rank key; the next ``max_backups`` candidates become BGWs with
ranks 1..n (a BGW of rank k waits ``k * 2*Thop`` before stepping in,
Section 4.3).  The rank key prefers candidates deeper inside the overlap
region -- farther from both disk edges -- because such nodes hear both CHs
most reliably; NID breaks ties deterministically.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Optional, Tuple

from repro.cluster.state import Boundary
from repro.types import NodeId
from repro.util.geometry import Vec2
from repro.util.validation import check_int_at_least

#: Default cap on BGWs per boundary; the analysis in Section 5 of the paper
#: and our ablations vary this as ``n``.
DEFAULT_MAX_BACKUPS = 2


def gateway_candidates(
    owner_members: FrozenSet[NodeId],
    owner_head: NodeId,
    peer_head_neighbors: FrozenSet[NodeId],
) -> Tuple[NodeId, ...]:
    """Members of the owner cluster adjacent to the peer CH, sorted by NID."""
    return tuple(
        sorted(
            m
            for m in owner_members
            if m != owner_head and m in peer_head_neighbors
        )
    )


def rank_gateway_candidates(
    candidates: Tuple[NodeId, ...],
    owner_head: NodeId,
    peer_head: NodeId,
    positions: Mapping[NodeId, Vec2],
) -> Tuple[NodeId, ...]:
    """Candidates ordered by forwarding fitness (best first).

    Fitness = the larger of the two CH distances, minimized: the candidate
    whose worst link is shortest sits most centrally in the lens-shaped
    overlap of the two cluster disks.
    """
    owner_pos = positions[owner_head]
    peer_pos = positions[peer_head]

    def key(nid: NodeId) -> Tuple[float, int]:
        worst_link = max(
            positions[nid].distance_to(owner_pos),
            positions[nid].distance_to(peer_pos),
        )
        return (worst_link, int(nid))

    return tuple(sorted(candidates, key=key))


def select_boundary(
    owner_head: NodeId,
    peer_head: NodeId,
    owner_members: FrozenSet[NodeId],
    peer_head_neighbors: FrozenSet[NodeId],
    positions: Mapping[NodeId, Vec2],
    max_backups: int = DEFAULT_MAX_BACKUPS,
) -> Optional[Boundary]:
    """Build the boundary owned by ``owner_head`` toward ``peer_head``.

    Returns ``None`` when no member of the owner cluster can reach the peer
    CH directly (the clusters are not neighbors in the F1 sense).
    """
    check_int_at_least("max_backups", max_backups, 0)
    candidates = gateway_candidates(owner_members, owner_head, peer_head_neighbors)
    if not candidates:
        return None
    ranked = rank_gateway_candidates(candidates, owner_head, peer_head, positions)
    return Boundary(
        owner=owner_head,
        peer=peer_head,
        gateway=ranked[0],
        backups=ranked[1 : 1 + max_backups],
    )
