"""Cluster-based communication architecture (Section 3 of the paper).

Two ways to obtain a cluster structure:

- :func:`repro.cluster.geometric.build_clusters` -- a centralized *oracle*
  that computes the lowest-ID clustering directly from the unit-disk graph.
  Used to set up analysis experiments deterministically (the paper's
  Section 5 assumes the cluster already exists).
- :class:`repro.cluster.formation.FormationProtocol` -- the distributed
  cluster-formation protocol itself, run over the lossy radio medium, with
  the paper's features F1-F5 (overlap, DCH/BGW redundancy, unique gateway
  affiliation, open-ended iterations, FDS round sharing).

Both produce a :class:`repro.cluster.state.ClusterLayout`.
"""

from repro.cluster.formation import FormationConfig, FormationProtocol, run_formation
from repro.cluster.geometric import build_clusters
from repro.cluster.state import (
    Boundary,
    Cluster,
    ClusterLayout,
    LocalClusterView,
)

__all__ = [
    "Cluster",
    "Boundary",
    "ClusterLayout",
    "LocalClusterView",
    "build_clusters",
    "FormationProtocol",
    "FormationConfig",
    "run_formation",
]
