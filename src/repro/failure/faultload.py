"""Fault loads: declarative collections of crash events.

A :class:`Faultload` separates *what fails when* from the machinery that
injects it, so experiments can log and replay the exact fault scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.failure.injection import CrashEvent, FailureInjector
from repro.fds.config import FdsConfig
from repro.types import NodeId, SimTime


@dataclass(frozen=True)
class Faultload:
    """An ordered, immutable crash schedule."""

    events: Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        times = [e.time for e in self.events]
        if sorted(times) != times:
            raise ConfigurationError("faultload events must be time-ordered")
        ids = [e.node_id for e in self.events]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("a node can only crash once (fail-stop)")

    def __len__(self) -> int:
        return len(self.events)

    def node_ids(self) -> Tuple[NodeId, ...]:
        return tuple(e.node_id for e in self.events)

    def inject(self, injector: FailureInjector) -> None:
        """Schedule every event on the given injector."""
        injector.schedule_crashes(self.events)


def make_random_crashes(
    candidates: Sequence[NodeId],
    count: int,
    config: FdsConfig,
    rng: np.random.Generator,
    fds_start: SimTime = 0.0,
    first_execution: int = 1,
    last_execution: int | None = None,
) -> Faultload:
    """``count`` distinct nodes crashing in random inter-execution gaps.

    Each crash is placed in the gap before a uniformly drawn execution in
    ``[first_execution, last_execution]`` (default: first only), at 60% of
    the interval -- safely outside the execution window.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if count > len(candidates):
        raise ConfigurationError(
            f"cannot crash {count} of {len(candidates)} candidates"
        )
    if first_execution < 1:
        raise ConfigurationError("first_execution must be >= 1")
    last = first_execution if last_execution is None else last_execution
    if last < first_execution:
        raise ConfigurationError("last_execution must be >= first_execution")
    chosen = rng.choice(np.asarray(candidates, dtype=np.int64), size=count, replace=False)
    events = []
    for nid in chosen:
        execution = int(rng.integers(first_execution, last + 1))
        time = fds_start + (execution - 1) * config.phi + 0.6 * config.phi
        events.append(CrashEvent(node_id=NodeId(int(nid)), time=time))
    events.sort(key=lambda e: (e.time, e.node_id))
    return Faultload(events=tuple(events))
