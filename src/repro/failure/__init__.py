"""Failure injection: crash schedules and fault loads."""

from repro.failure.faultload import Faultload, make_random_crashes
from repro.failure.injection import CrashEvent, FailureInjector

__all__ = ["CrashEvent", "FailureInjector", "Faultload", "make_random_crashes"]
