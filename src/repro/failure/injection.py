"""Crash injection honoring the paper's timing assumption.

Section 2.2 assumes "a node will not fail during an FDS execution": if a
node heartbeats at an epoch, it survives the execution window.  The
injector therefore validates that every crash instant falls *outside* the
execution windows implied by the FDS configuration, and provides
:meth:`FailureInjector.align_to_gap` to snap an arbitrary desired time to
the nearest legal instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError
from repro.fds.config import FdsConfig
from repro.sim.network import Network
from repro.types import NodeId, SimTime


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """A scheduled fail-stop crash."""

    node_id: NodeId
    time: SimTime


class FailureInjector:
    """Schedules fail-stop crashes on a network."""

    def __init__(
        self,
        network: Network,
        config: FdsConfig,
        fds_start: SimTime = 0.0,
        enforce_gap: bool = True,
    ) -> None:
        self.network = network
        self.config = config
        self.fds_start = fds_start
        self.enforce_gap = enforce_gap
        self.scheduled: List[CrashEvent] = []

    # ------------------------------------------------------------------
    def _window_of(self, time: SimTime) -> float:
        """Offset of ``time`` within its heartbeat interval."""
        return (time - self.fds_start) % self.config.phi

    def in_execution_window(self, time: SimTime) -> bool:
        """Whether ``time`` falls inside an FDS execution window."""
        if time < self.fds_start:
            return False
        return self._window_of(time) < self.config.execution_duration()

    def align_to_gap(self, time: SimTime) -> SimTime:
        """The earliest instant >= ``time`` outside any execution window."""
        if not self.in_execution_window(time):
            return time
        k = math.floor((time - self.fds_start) / self.config.phi)
        return self.fds_start + k * self.config.phi + self.config.execution_duration()

    # ------------------------------------------------------------------
    def schedule_crash(self, node_id: NodeId, time: SimTime) -> CrashEvent:
        """Schedule a fail-stop crash of ``node_id`` at ``time``."""
        if time < self.network.sim.now:
            raise ConfigurationError(
                f"crash time {time} is in the simulator's past"
            )
        if self.enforce_gap and self.in_execution_window(time):
            raise ConfigurationError(
                f"crash at t={time} falls inside an FDS execution window; "
                "the paper assumes nodes do not fail mid-execution -- use "
                "align_to_gap() or enforce_gap=False"
            )
        event = CrashEvent(node_id=node_id, time=time)
        self.scheduled.append(event)
        node = self.network.node(node_id)
        self.network.sim.schedule_at(time, node.crash, label="failure.crash")
        return event

    def schedule_crashes(self, events: Iterable[CrashEvent]) -> None:
        """Schedule a batch of crash events."""
        for event in events:
            self.schedule_crash(event.node_id, event.time)

    def crash_before_execution(self, node_id: NodeId, execution: int) -> CrashEvent:
        """Crash ``node_id`` in the gap right before execution ``execution``.

        The crash lands one tenth of an interval before the epoch, which is
        after the previous execution's window for any sane configuration.
        """
        if execution < 1:
            # There is no gap before execution 0 unless fds_start > 0.
            time = max(self.network.sim.now, self.fds_start - 0.1 * self.config.phi)
            if time >= self.fds_start:
                raise ConfigurationError(
                    "cannot crash before execution 0 when the FDS starts at "
                    "the simulation origin; start the FDS later or crash "
                    "before a later execution"
                )
        else:
            epoch = self.fds_start + execution * self.config.phi
            time = epoch - 0.1 * self.config.phi
            if self.in_execution_window(time):
                time = self.align_to_gap(time)
        return self.schedule_crash(node_id, time)
