"""Parallel experiment fabric: process-pool execution of scenario batches.

This is the public face of the fabric; the generic machinery
(:func:`parallel_map`, seed spawning, chunking) lives in
:mod:`repro.util.parallel` and is re-exported here.  On top of it, this
module adds the scenario-level entry point used by
:func:`repro.experiments.repeat.repeat_scenario` and ad-hoc sweeps: map a
list of :class:`ScenarioConfig` onto summary dicts, optionally across a
process pool.

Determinism guarantee
---------------------
Worker count never changes results.  A scenario run is a pure function of
its config (every RNG stream derives from ``config.seed``), and
:func:`parallel_map` preserves input order, so ``workers=8`` returns
bit-identical summaries to ``workers=1`` for the same config list.  The
regression tests in ``tests/test_experiments_parallel.py`` pin this down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.util.parallel import (
    auto_chunksize,
    chunk_sizes,
    effective_workers,
    note_task_rate,
    observed_task_rate,
    parallel_map,
    resolve_workers,
    shared_pool,
    shutdown_shared_pool,
    spawn_rngs,
    spawn_seed_sequences,
)

__all__ = [
    "auto_chunksize",
    "chunk_sizes",
    "effective_workers",
    "note_task_rate",
    "observed_task_rate",
    "parallel_map",
    "resolve_workers",
    "run_scenario_summaries",
    "scenario_summary",
    "shared_pool",
    "shutdown_shared_pool",
    "spawn_rngs",
    "spawn_seed_sequences",
]


def scenario_summary(config: ScenarioConfig) -> Dict[str, float]:
    """Run one scenario and keep only its scalar summary.

    Module-level (picklable) so it can cross a process boundary; dropping
    the heavyweight :class:`ScenarioResult` in the worker keeps the
    inter-process payload to a small dict of floats.
    """
    return run_scenario(config).summary()


def run_scenario_summaries(
    configs: Sequence[ScenarioConfig],
    workers: Optional[int] = 1,
) -> List[Dict[str, float]]:
    """Summaries for each config, in input order.

    ``workers=1`` runs serially in-process; ``workers=None`` uses all
    CPUs.  Results are bit-identical for any worker count.
    """
    return parallel_map(scenario_summary, list(configs), workers=workers)
