"""Generic end-to-end scenario runner.

One call builds the field, forms clusters (oracle by default, or the
distributed protocol), installs the FDS, injects the faultload, runs the
requested executions, and scores the result -- the shared engine behind
the examples, the ablations, and the scenario benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.formation import FormationConfig, run_formation
from repro.cluster.geometric import build_clusters
from repro.cluster.state import ClusterLayout
from repro.energy.model import EnergyConfig, EnergyModel
from repro.errors import ExperimentError
from repro.failure.faultload import Faultload, make_random_crashes
from repro.failure.injection import FailureInjector
from repro.fds.config import FdsConfig
from repro.fds.service import FdsDeployment, install_fds
from repro.metrics.collectors import MessageCounts, collect_message_counts
from repro.metrics.properties import (
    PropertyReport,
    detection_latency,
    evaluate_properties,
)
from repro.obs.analyze import META_KIND, PROFILE_KIND
from repro.obs.profiler import PhaseProfiler
from repro.sim.loss import LOSS_KINDS, build_loss_model
from repro.sim.network import Network, NetworkConfig, build_network
from repro.sim.trace import RecordingTracer, Tracer
from repro.topology.generators import multi_cluster_field
from repro.topology.graph import UnitDiskGraph
from repro.types import NodeId, SimTime
from repro.util.rng import RngFactory


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete end-to-end scenario description."""

    cluster_count: int = 4
    members_per_cluster: int = 30
    transmission_range: float = 100.0
    loss_probability: float = 0.1
    crash_count: int = 2
    executions: int = 5
    seed: int = 0
    fds: FdsConfig = field(default_factory=FdsConfig)
    #: ``"oracle"`` builds clusters geometrically; ``"protocol"`` runs the
    #: distributed formation over the lossy medium first.
    formation: str = "oracle"
    #: Formation iterations (F4 has no termination rule; this is how many
    #: six-round iterations the protocol runs).  Only used with
    #: ``formation="protocol"``.
    formation_iterations: int = 3
    #: Upper bound of the RCC declaration backoff as a fraction of a
    #: round (see :func:`repro.cluster.rcc.declaration_backoff`).
    formation_backoff_fraction: float = 0.4
    track_energy: bool = False
    #: Radio hot-path selector; ``False`` runs the scalar reference loop
    #: (same seeded results bit-for-bit, only slower -- see sim/medium.py).
    vectorized: bool = True
    #: Declarative loss-model spec (see :func:`repro.sim.loss.build_loss_model`).
    #: ``"bernoulli"`` with empty params reproduces the classic behaviour
    #: driven by ``loss_probability``; the spec stays a plain (kind, tuple)
    #: pair so configs remain frozen, hashable, and picklable for the
    #: parallel fabric.
    loss_kind: str = "bernoulli"
    loss_params: Tuple[Tuple[str, float], ...] = ()
    #: CH lattice spacing as a fraction of the radio range (must stay in
    #: (1, 2)); tighter spacing widens the lens overlaps, giving nodes
    #: multiple boundary duties.
    spacing_factor: float = 1.6
    #: Per-boundary BGW cap (``None`` = clustering default).
    max_backups: Optional[int] = None
    #: Execution engine: ``"event"`` runs the discrete-event simulator
    #: (the scalar reference -- every message is a scheduled callback);
    #: ``"array"`` runs the round-level numpy engine
    #: (:mod:`repro.sim.array_engine`), which batches each φ-interval
    #: across the whole field and scales to 10^6 nodes.  Same placement
    #: and faultload streams either way; loss draws are engine-private.
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.formation not in ("oracle", "protocol"):
            raise ExperimentError(
                f"formation must be 'oracle' or 'protocol', got "
                f"{self.formation!r}"
            )
        if self.engine not in ("event", "array"):
            raise ExperimentError(
                f"engine must be 'event' or 'array', got {self.engine!r}"
            )
        if self.loss_kind not in LOSS_KINDS:
            raise ExperimentError(
                f"loss_kind must be one of {LOSS_KINDS}, got {self.loss_kind!r}"
            )
        if self.crash_count < 0:
            raise ExperimentError("crash_count must be >= 0")
        if self.formation_iterations < 1:
            raise ExperimentError("formation_iterations must be >= 1")
        if not 0.0 < self.formation_backoff_fraction <= 0.9:
            raise ExperimentError(
                "formation_backoff_fraction must be in (0, 0.9], got "
                f"{self.formation_backoff_fraction!r}"
            )
        if self.executions < 1:
            raise ExperimentError("executions must be >= 1")


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    config: ScenarioConfig
    network: Network
    layout: ClusterLayout
    deployment: FdsDeployment
    faultload: Faultload
    properties: PropertyReport
    messages: MessageCounts
    tracer: Tracer
    crash_times: Dict[NodeId, SimTime]

    @property
    def detection_latencies(self) -> Dict[NodeId, Optional[SimTime]]:
        """Crash-to-first-detection seconds per crashed node.

        Needs a tracer with full in-memory records (the default
        :class:`RecordingTracer`).  With a disk-spooling tracer every
        entry is ``None`` here -- run ``repro trace latency`` on the
        spool instead.
        """
        return detection_latency(self.tracer, self.crash_times)

    def summary(self) -> Dict[str, float]:
        latencies = [v for v in self.detection_latencies.values() if v is not None]
        return {
            "nodes": float(len(self.network)),
            "clusters": float(len(self.layout.clusters)),
            "crashes": float(len(self.faultload)),
            "mean_completeness": self.properties.mean_completeness,
            "accuracy_violations": float(
                len(self.properties.accuracy_violations)
            ),
            "transmissions": float(self.messages.transmissions),
            "observed_loss_rate": self.messages.loss_rate,
            "mean_detection_latency": (
                float(sum(latencies) / len(latencies)) if latencies else 0.0
            ),
        }


def run_scenario(
    config: ScenarioConfig,
    tracer: Optional[Tracer] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> "ScenarioResult":
    """Build, run, and score one end-to-end scenario.

    ``tracer`` overrides the default in-memory :class:`RecordingTracer`
    -- pass a :class:`~repro.obs.spool.SpoolingTracer` to stream the
    trace to disk instead of holding it (soaks, campaigns).  ``profiler``
    attaches a :class:`~repro.obs.profiler.PhaseProfiler` to the
    simulator; its per-phase totals are appended to the trace as
    ``profile.phase`` records at run end.  Either way the run is stamped
    with a ``meta.scenario`` record so post-hoc analysis (``repro
    trace``) can recover phi/thop/seed from the trace alone.

    With ``engine="array"`` the run is delegated to
    :func:`repro.sim.array_engine.run_array_scenario`; the returned
    :class:`~repro.sim.array_engine.ArrayScenarioResult` exposes the
    same scoring surface (``summary()``, ``properties``, ``messages``,
    ``detection_latencies``, ``crash_times``, verdict-kind trace).
    """
    if config.engine == "array":
        from repro.sim.array_engine import run_array_scenario

        return run_array_scenario(config, tracer=tracer, profiler=profiler)

    rngs = RngFactory(config.seed)
    positions = multi_cluster_field(
        cluster_count=config.cluster_count,
        members_per_cluster=config.members_per_cluster,
        radius=config.transmission_range,
        rng=rngs.stream("placement"),
        spacing_factor=config.spacing_factor,
    )
    if tracer is None:
        tracer = RecordingTracer()
    loss_model = build_loss_model(
        config.loss_kind,
        config.loss_params,
        loss_probability=config.loss_probability,
        transmission_range=config.transmission_range,
    )
    network = build_network(
        positions,
        NetworkConfig(
            transmission_range=config.transmission_range,
            loss_probability=config.loss_probability,
            seed=config.seed,
            vectorized=config.vectorized,
        ),
        loss_model=loss_model,
        tracer=tracer,
    )
    if profiler is not None:
        network.sim.profiler = profiler

    if config.formation == "oracle":
        graph = UnitDiskGraph(positions, radius=config.transmission_range)
        if config.max_backups is None:
            layout = build_clusters(graph)
        else:
            layout = build_clusters(graph, max_backups=config.max_backups)
        fds_start = 0.0
    else:
        formation_config = FormationConfig(
            thop=config.fds.thop,
            iterations=config.formation_iterations,
            backoff_fraction=config.formation_backoff_fraction,
        )
        layout = run_formation(network, formation_config)
        fds_start = network.sim.now + config.fds.thop

    energy = EnergyModel(EnergyConfig()) if config.track_energy else None
    deployment = install_fds(
        network, layout, config.fds, energy=energy, start_time=fds_start
    )

    injector = FailureInjector(network, config.fds, fds_start=fds_start)
    candidates: Tuple[NodeId, ...] = tuple(
        nid for nid in network.operational_ids() if nid not in layout.heads
    )
    last_exec = max(1, config.executions - 2)
    faultload = make_random_crashes(
        candidates,
        config.crash_count,
        config.fds,
        rngs.stream("faultload"),
        fds_start=fds_start,
        first_execution=1,
        last_execution=last_exec,
    )
    faultload.inject(injector)
    crash_times = {e.node_id: e.time for e in faultload.events}

    if tracer.enabled:
        tracer.record(
            network.sim.now,
            META_KIND,
            phi=config.fds.phi,
            thop=config.fds.thop,
            nodes=len(network),
            seed=config.seed,
            executions=config.executions,
            fds_start=fds_start,
        )
        # Cluster map right after the run description: the spool alone
        # must be able to draw the field (repro serve's /api/topology).
        from repro.obs.topology import TOPOLOGY_KIND, layout_topology_detail

        tracer.record(
            network.sim.now,
            TOPOLOGY_KIND,
            **layout_topology_detail(layout, positions),
        )

    deployment.run_executions(config.executions)

    if profiler is not None and profiler.enabled and tracer.enabled:
        for phase, seconds, _share, calls in profiler.shares():
            tracer.record(
                network.sim.now,
                PROFILE_KIND,
                phase=phase,
                seconds=seconds,
                calls=calls,
            )

    return ScenarioResult(
        config=config,
        network=network,
        layout=layout,
        deployment=deployment,
        faultload=faultload,
        properties=evaluate_properties(deployment),
        messages=collect_message_counts(deployment),
        tracer=tracer,
        crash_times=crash_times,
    )
