"""Regeneration of the paper's Figures 5, 6, and 7.

Each figure function evaluates the corresponding Section 5 measure over
the paper's exact grid (p = 0.05..0.50 step 0.05; N in {50, 75, 100};
R = 100 m; worst-case member position) and returns a
:class:`~repro.analysis.sweep.MeasureSeries` whose rows are the figure's
curves.  :func:`render_figure` prints them as the table the benchmark
emits.

:data:`PAPER_CLAIMS` encodes every *quantitative sentence* the paper's
evaluation text states about the figures, and :func:`check_paper_claims`
verifies our reproduction satisfies each one -- this is the
reproduction-fidelity gate (absolute curve values cannot be compared
because the paper publishes plots, not tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.analysis.ch_false_detection import p_false_detection_on_ch
from repro.analysis.false_detection import p_false_detection
from repro.analysis.incompleteness import p_incompleteness
from repro.analysis.sweep import (
    PAPER_N_VALUES,
    PAPER_P_GRID,
    MeasureSeries,
    sweep_measure,
)
from repro.util.tables import render_series_table


def figure5_false_detection() -> MeasureSeries:
    """Figure 5: P^(False detection) vs p for N in {50, 75, 100}."""
    return sweep_measure("fig5:p_false_detection", p_false_detection)


def figure6_false_detection_on_ch() -> MeasureSeries:
    """Figure 6: P(False detection on CH) vs p for N in {50, 75, 100}."""
    return sweep_measure(
        "fig6:p_false_detection_on_ch", p_false_detection_on_ch
    )


def figure7_incompleteness() -> MeasureSeries:
    """Figure 7: P^(Incompleteness) vs p for N in {50, 75, 100}."""
    return sweep_measure("fig7:p_incompleteness", p_incompleteness)


def render_figure(series: MeasureSeries, title: str | None = None) -> str:
    """The figure as an aligned text table (one column per N curve)."""
    ns = sorted(series.curves)
    return render_series_table(
        "p",
        list(series.p_values),
        {f"N={n}": list(series.curves[n]) for n in ns},
        title=title or series.name,
    )


# ----------------------------------------------------------------------
# The paper's quantitative claims about its figures
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper's evaluation text."""

    claim_id: str
    statement: str
    check: Callable[[], bool]


def _fig5() -> MeasureSeries:
    return figure5_false_detection()


def _claim_fig5_small_at_high_density() -> bool:
    # "if the cluster is densely or moderately densely populated (N = 100
    # or N = 75), the values ... are very small, even when p equals 0.5."
    return (
        p_false_detection(100, 0.5) < 1e-4
        and p_false_detection(75, 0.5) < 1e-3
    )


def _claim_fig5_reasonable_at_n50() -> bool:
    # "Even with ... N = 50, the results of the measure are still very
    # reasonable" -- the curve tops out well below 1e-2.
    return p_false_detection(50, 0.5) < 1e-2


def _claim_fig6_negligible_below_quarter() -> bool:
    # "the likelihood of such a false detection is practically negligible
    # or extremely low when p is below 0.25."
    return all(
        p_false_detection_on_ch(n, 0.20) < 1e-20 for n in PAPER_N_VALUES
    )


def _claim_fig6_below_1e6_at_n50() -> bool:
    # "the value of this measure is still below 10^-6 even when N drops
    # to 50" (at p = 0.5).
    return p_false_detection_on_ch(50, 0.5) < 1e-6


def _claim_ch_more_likely_than_dch() -> bool:
    # "it seems a bit surprising that the CH is more likely than the DCH
    # to make a false detection" -- P^(FD) > P(FDoCH) pointwise.
    return all(
        p_false_detection(n, p) > p_false_detection_on_ch(n, p)
        for n in PAPER_N_VALUES
        for p in PAPER_P_GRID
    )


def _claim_fig7_density_improves() -> bool:
    # "when N increases from 50 to 100, P^(Incompleteness) decreases
    # significantly" -- at least an order-of-magnitude win everywhere on
    # the grid, growing to many orders of magnitude at low p.
    return (
        all(
            p_incompleteness(100, p) < p_incompleteness(50, p) * 0.15
            for p in PAPER_P_GRID
        )
        and p_incompleteness(100, 0.05) < p_incompleteness(50, 0.05) * 1e-6
    )


def _sensitivity(measure: Callable[[int, float], float], n: int) -> float:
    """Orders of magnitude a measure spans across the paper's p range."""
    import math

    low = measure(n, PAPER_P_GRID[0])
    high = measure(n, PAPER_P_GRID[-1])
    return math.log10(high) - math.log10(low)


def _claim_fig7_larger_n_more_sensitive() -> bool:
    # "P^(Incompleteness) becomes more sensitive to p when N becomes
    # larger" -- the N=100 curve spans more decades than the N=50 curve.
    return _sensitivity(p_incompleteness, 100) > _sensitivity(
        p_incompleteness, 50
    )


def _claim_monotone_in_p() -> bool:
    # All three curves rise monotonically with p for every N.
    for n in PAPER_N_VALUES:
        for measure in (
            p_false_detection,
            p_false_detection_on_ch,
            p_incompleteness,
        ):
            values = [measure(n, p) for p in PAPER_P_GRID]
            if any(b <= a for a, b in zip(values, values[1:])):
                return False
    return True


def _claim_monotone_in_n() -> bool:
    # Density helps: for fixed p, every measure decreases as N grows.
    for p in PAPER_P_GRID:
        for measure in (
            p_false_detection,
            p_false_detection_on_ch,
            p_incompleteness,
        ):
            values = [measure(n, p) for n in PAPER_N_VALUES]
            if any(b >= a for a, b in zip(values, values[1:])):
                return False
    return True


PAPER_CLAIMS: Tuple[Claim, ...] = (
    Claim(
        "fig5-high-density-small",
        "Fig 5: N=100/N=75 stay very small even at p=0.5",
        _claim_fig5_small_at_high_density,
    ),
    Claim(
        "fig5-n50-reasonable",
        "Fig 5: N=50 still very reasonable at p=0.5",
        _claim_fig5_reasonable_at_n50,
    ),
    Claim(
        "fig6-negligible-below-0.25",
        "Fig 6: practically negligible for p below 0.25",
        _claim_fig6_negligible_below_quarter,
    ),
    Claim(
        "fig6-below-1e-6-at-n50",
        "Fig 6: below 1e-6 even at N=50, p=0.5",
        _claim_fig6_below_1e6_at_n50,
    ),
    Claim(
        "ch-more-likely-than-dch",
        "Fig 5 vs 6: the CH is more likely than the DCH to false-detect",
        _claim_ch_more_likely_than_dch,
    ),
    Claim(
        "fig7-density-improves",
        "Fig 7: N 50 -> 100 decreases incompleteness significantly",
        _claim_fig7_density_improves,
    ),
    Claim(
        "fig7-sensitivity-grows-with-n",
        "Figs 5-7: larger N makes measures more sensitive to p",
        _claim_fig7_larger_n_more_sensitive,
    ),
    Claim(
        "monotone-in-p",
        "All curves increase monotonically with p",
        _claim_monotone_in_p,
    ),
    Claim(
        "monotone-in-n",
        "All measures decrease monotonically with N",
        _claim_monotone_in_n,
    ),
)


def check_paper_claims() -> List[Tuple[Claim, bool]]:
    """Evaluate every encoded claim; returns (claim, passed) pairs."""
    return [(claim, claim.check()) for claim in PAPER_CLAIMS]
