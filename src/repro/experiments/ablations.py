"""Ablations of the paper's design choices.

Each ablation toggles exactly one mechanism and measures the property it
exists to protect, using the real protocol on the real lossy medium:

==========================  ============================================
mechanism (paper section)   protected property measured
==========================  ============================================
digest round R-2 (4.2)      accuracy: false detections per member-round
peer forwarding (4.2)       completeness: missed R-3 updates per round
DCH takeover (4.2, F2)      cluster survival of a CH crash
BGW standby (4.3, F2)       across-boundary report delivery
implicit ack (4.3)          across-boundary delivery vs message cost
==========================  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.cluster.geometric import build_clusters
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.fds.service import install_fds
from repro.metrics.collectors import collect_message_counts
from repro.failure.injection import FailureInjector
from repro.sim.network import NetworkConfig, build_network
from repro.sim.trace import RecordingTracer
from repro.topology.generators import corridor_field
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import cluster_disk_placement
from repro.types import NodeId
from repro.util.rng import RngFactory


@dataclass(frozen=True)
class AblationRow:
    """One configuration's measurements."""

    label: str
    metrics: Dict[str, float]


@dataclass(frozen=True)
class AblationResult:
    """A named set of configuration rows."""

    name: str
    rows: Tuple[AblationRow, ...]

    def metric(self, label: str, key: str) -> float:
        for row in self.rows:
            if row.label == label:
                return row.metrics[key]
        raise KeyError(f"no row labelled {label!r} in ablation {self.name!r}")


# ----------------------------------------------------------------------
# Shared single-cluster runner
# ----------------------------------------------------------------------


def _run_single_cluster(
    n: int, p: float, executions: int, seed: int, cfg: FdsConfig
) -> Tuple[RecordingTracer, "object", int]:
    rngs = RngFactory(seed)
    placement = cluster_disk_placement(
        member_count=n - 1, radius=100.0, rng=rngs.stream("placement")
    )
    graph = UnitDiskGraph(placement, radius=100.0)
    layout = build_clusters(graph)
    tracer = RecordingTracer()
    network = build_network(
        placement, NetworkConfig(loss_probability=p, seed=seed), tracer=tracer
    )
    deployment = install_fds(network, layout, cfg)
    deployment.run_executions(executions)
    return tracer, deployment, n - 1


def ablation_digest(
    n: int = 40,
    p: float = 0.3,
    executions: int = 60,
    seed: int = 0,
) -> AblationResult:
    """R-2 on/off: false detections per member-execution (no crashes).

    Without digests the rule degenerates to a bare heartbeat timeout and
    the per-member false-detection probability is ``p**2`` (heartbeat and
    digest... the digest *message* still being absent, only the heartbeat
    matters: ``p``); with digests it is the Figure 5 bound.
    """
    base = FdsConfig(phi=4.0, thop=0.5)
    rows: List[AblationRow] = []
    for label, cfg in (
        ("with-digests", base),
        ("without-digests", replace(base, use_digests=False)),
    ):
        tracer, _deployment, members = _run_single_cluster(
            n, p, executions, seed, cfg
        )
        false_detections = tracer.count(ev.DETECTION)
        rows.append(
            AblationRow(
                label=label,
                metrics={
                    "false_detections": float(false_detections),
                    "rate_per_member_execution": false_detections
                    / (members * executions),
                },
            )
        )
    return AblationResult(name="digest-round", rows=tuple(rows))


def ablation_peer_forwarding(
    n: int = 40,
    p: float = 0.3,
    executions: int = 60,
    seed: int = 0,
) -> AblationResult:
    """Peer forwarding on/off: member-executions without the R-3 update."""
    base = FdsConfig(phi=4.0, thop=0.5)
    rows: List[AblationRow] = []
    for label, cfg in (
        ("with-peer-forwarding", base),
        ("without-peer-forwarding", replace(base, peer_forwarding=False)),
    ):
        _tracer, deployment, members = _run_single_cluster(
            n, p, executions, seed, cfg
        )
        missing = 0
        for nid, protocol in deployment.protocols.items():
            if protocol.is_head:
                continue
            received = protocol.updates_received
            missing += sum(1 for k in range(executions) if k not in received)
        rows.append(
            AblationRow(
                label=label,
                metrics={
                    "missed_updates": float(missing),
                    "rate_per_member_execution": missing
                    / (members * executions),
                },
            )
        )
    return AblationResult(name="peer-forwarding", rows=tuple(rows))


def ablation_dch(
    n: int = 40,
    p: float = 0.2,
    executions: int = 6,
    seed: int = 0,
) -> AblationResult:
    """DCH on/off: does the cluster survive its CH crashing?

    Measured as the fraction of surviving members that (a) learned of the
    CH failure and (b) received an R-3 update in the final execution
    (i.e. somebody is running the cluster again).
    """
    rows: List[AblationRow] = []
    for label, dch_enabled in (("with-dch", True), ("without-dch", False)):
        cfg = FdsConfig(phi=4.0, thop=0.5, dch_enabled=dch_enabled)
        rngs = RngFactory(seed)
        placement = cluster_disk_placement(
            member_count=n - 1, radius=100.0, rng=rngs.stream("placement")
        )
        graph = UnitDiskGraph(placement, radius=100.0)
        layout = build_clusters(graph)
        network = build_network(
            placement, NetworkConfig(loss_probability=p, seed=seed)
        )
        deployment = install_fds(network, layout, cfg)
        injector = FailureInjector(network, cfg)
        head = layout.heads[0]
        injector.crash_before_execution(head, 2)
        deployment.run_executions(executions)
        survivors = [
            nid
            for nid in network.operational_ids()
            if nid != head
        ]
        aware = sum(
            1
            for nid in survivors
            if head in deployment.protocols[nid].history
        )
        last_served = sum(
            1
            for nid in survivors
            if (executions - 1) in deployment.protocols[nid].updates_received
        )
        rows.append(
            AblationRow(
                label=label,
                metrics={
                    "aware_of_ch_failure": aware / len(survivors),
                    "served_in_last_execution": last_served / len(survivors),
                },
            )
        )
    return AblationResult(name="dch-takeover", rows=tuple(rows))


# ----------------------------------------------------------------------
# Boundary ablations (two-or-more-cluster corridor)
# ----------------------------------------------------------------------


def _run_corridor(
    p: float,
    seed: int,
    cfg: FdsConfig,
    max_backups: int,
    clusters: int = 2,
    members: int = 25,
    executions: int = 3,
):
    rngs = RngFactory(seed)
    placement = corridor_field(
        cluster_count=clusters,
        members_per_cluster=members,
        radius=100.0,
        rng=rngs.stream("placement"),
    )
    graph = UnitDiskGraph(placement, radius=100.0)
    layout = build_clusters(graph, max_backups=max_backups)
    network = build_network(
        placement, NetworkConfig(loss_probability=p, seed=seed)
    )
    deployment = install_fds(network, layout, cfg)
    injector = FailureInjector(network, cfg)
    # Crash a member of the *first* cluster (the boundary owner), far from
    # the peer: the report then crosses via the owner's GW/BGW outbound
    # path only, isolating the standby-ladder mechanism.  (Failures on the
    # peer side can also cross via overheard peer-forwarded updates, which
    # would mask the ablation.)
    first_head = layout.heads[0]
    boundary_forwarders = {
        f for b in layout.boundaries.values() for f in b.all_forwarders
    }
    victim = max(
        layout.clusters[first_head].ordinary_members - boundary_forwarders,
        key=lambda nid: graph.distance(nid, layout.heads[-1]),
    )
    injector.crash_before_execution(victim, 1)
    deployment.run_executions(executions)
    # Did the last cluster's members learn about the victim?
    last_members = layout.clusters[layout.heads[-1]].members
    observers = [
        nid for nid in last_members if network.nodes[nid].is_operational
    ]
    aware = sum(
        1 for nid in observers if victim in deployment.protocols[nid].history
    )
    counts = collect_message_counts(deployment)
    return aware / len(observers), counts


def ablation_bgw_count(
    p: float = 0.4,
    trials: int = 10,
    seed: int = 0,
) -> AblationResult:
    """BGW count 0/1/2: cross-boundary knowledge at high loss.

    Retries are disabled (``max_forward_retries=0``) so delivery hinges on
    the GW's single shot plus however many ranked BGW backups exist --
    isolating the mechanism the ``k * 2*Thop`` standby ladder provides.
    """
    cfg = FdsConfig(phi=6.0, thop=0.5, max_forward_retries=0)
    rows: List[AblationRow] = []
    for backups in (0, 1, 2):
        fractions = []
        reports = 0
        for t in range(trials):
            fraction, counts = _run_corridor(
                p, seed + 1000 * t, cfg, max_backups=backups
            )
            fractions.append(fraction)
            reports += counts.reports_sent
        rows.append(
            AblationRow(
                label=f"backups={backups}",
                metrics={
                    "mean_cross_boundary_knowledge": sum(fractions)
                    / len(fractions),
                    "mean_reports_sent": reports / trials,
                },
            )
        )
    return AblationResult(name="bgw-count", rows=tuple(rows))


def ablation_implicit_ack(
    p: float = 0.4,
    trials: int = 10,
    seed: int = 0,
) -> AblationResult:
    """Implicit ack on/off: delivery robustness vs forwarding cost."""
    rows: List[AblationRow] = []
    for label, implicit in (
        ("with-implicit-ack", True),
        ("without-implicit-ack", False),
    ):
        cfg = FdsConfig(phi=6.0, thop=0.5, implicit_ack=implicit)
        fractions = []
        reports = 0
        for t in range(trials):
            fraction, counts = _run_corridor(
                p, seed + 1000 * t, cfg, max_backups=2
            )
            fractions.append(fraction)
            reports += counts.reports_sent
        rows.append(
            AblationRow(
                label=label,
                metrics={
                    "mean_cross_boundary_knowledge": sum(fractions)
                    / len(fractions),
                    "mean_reports_sent": reports / trials,
                },
            )
        )
    return AblationResult(name="implicit-ack", rows=tuple(rows))
