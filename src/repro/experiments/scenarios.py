"""Protocol-in-the-loop validation of the Section 5 measures.

The analytic formulas and their geometry-level Monte Carlo twins model the
protocol; :func:`single_cluster_validation` closes the loop by running the
*actual* FDS -- real rounds, real digests, real peer forwarding -- on the
paper's Section 5 setup (one cluster, CH at the center, N-1 uniform
members, the watched member on the circumference) and counting the same
events per execution:

- the watched member falsely detected by the CH (no crashes are injected,
  so every detection is false);
- the watched member ending an execution without the R-3 update despite
  peer forwarding (incompleteness).

Rates over many executions are compared against the closed forms with
Wilson intervals.  Event probabilities below ~1/executions are not
measurable this way (the paper's curves reach 1e-120); validation runs use
the high-p corner where the measures are observable, which is also where
the protocol is under the most stress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.confidence import wilson_interval
from repro.analysis.false_detection import p_false_detection
from repro.analysis.incompleteness import p_incompleteness
from repro.cluster.geometric import build_clusters
from repro.errors import ExperimentError
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.fds.service import install_fds
from repro.metrics.properties import evaluate_properties
from repro.sim.network import NetworkConfig, build_network
from repro.sim.trace import RecordingTracer
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import cluster_disk_placement
from repro.types import NodeId
from repro.util.rng import RngFactory


@dataclass(frozen=True)
class ValidationResult:
    """Observed vs analytic rates for one (N, p) point."""

    n: int
    p: float
    executions: int
    watched_member: NodeId
    false_detections: int
    incompleteness_events: int
    analytic_false_detection: float
    analytic_incompleteness: float
    accuracy_violations_final: int

    @property
    def false_detection_rate(self) -> float:
        return self.false_detections / self.executions

    @property
    def incompleteness_rate(self) -> float:
        return self.incompleteness_events / self.executions

    def false_detection_interval(
        self, confidence: float = 0.99
    ) -> Tuple[float, float]:
        return wilson_interval(self.false_detections, self.executions, confidence)

    def incompleteness_interval(
        self, confidence: float = 0.99
    ) -> Tuple[float, float]:
        return wilson_interval(
            self.incompleteness_events, self.executions, confidence
        )


def single_cluster_validation(
    n: int = 50,
    p: float = 0.5,
    executions: int = 300,
    seed: int = 0,
    fds_config: FdsConfig | None = None,
) -> ValidationResult:
    """Run the real FDS on the Section 5 cluster and count the events.

    ``n`` is the total cluster population (CH included), matching the
    paper's N.  The watched member is placed exactly on the circumference
    (the worst case both bounds are computed at).
    """
    if n < 3:
        raise ExperimentError(f"n must be >= 3, got {n}")
    if executions < 1:
        raise ExperimentError("executions must be >= 1")
    rngs = RngFactory(seed)
    placement = cluster_disk_placement(
        member_count=n - 1,
        radius=100.0,
        rng=rngs.stream("placement"),
        worst_case_member=True,
    )
    watched = NodeId(max(placement))  # the circumference member
    graph = UnitDiskGraph(placement, radius=100.0)
    layout = build_clusters(graph)
    if len(layout.clusters) != 1:
        raise ExperimentError(
            "single-cluster placement unexpectedly produced "
            f"{len(layout.clusters)} clusters"
        )
    tracer = RecordingTracer()
    network = build_network(
        placement,
        NetworkConfig(loss_probability=p, seed=seed),
        tracer=tracer,
    )
    cfg = fds_config if fds_config is not None else FdsConfig(phi=4.0, thop=0.5)
    deployment = install_fds(network, layout, cfg)
    deployment.run_executions(executions)

    false_detections = sum(
        1
        for record in tracer.iter_kind(ev.DETECTION)
        if int(record.detail["target"]) == int(watched)
    )
    received = deployment.protocols[watched].updates_received
    incompleteness_events = executions - len(
        [k for k in received if 0 <= k < executions]
    )
    report = evaluate_properties(deployment)
    return ValidationResult(
        n=n,
        p=p,
        executions=executions,
        watched_member=watched,
        false_detections=false_detections,
        incompleteness_events=incompleteness_events,
        analytic_false_detection=p_false_detection(n, p),
        analytic_incompleteness=p_incompleteness(n, p),
        accuracy_violations_final=len(report.accuracy_violations),
    )


def validation_summary(result: ValidationResult) -> Dict[str, float]:
    """Flat dict for table rendering / EXPERIMENTS.md."""
    fd_low, fd_high = result.false_detection_interval()
    inc_low, inc_high = result.incompleteness_interval()
    return {
        "N": float(result.n),
        "p": result.p,
        "executions": float(result.executions),
        "fd_rate_measured": result.false_detection_rate,
        "fd_rate_analytic": result.analytic_false_detection,
        "fd_ci_low": fd_low,
        "fd_ci_high": fd_high,
        "inc_rate_measured": result.incompleteness_rate,
        "inc_rate_analytic": result.analytic_incompleteness,
        "inc_ci_low": inc_low,
        "inc_ci_high": inc_high,
    }
