"""Multi-seed repetition of scenarios with aggregate statistics.

One seeded run can get lucky; credible protocol claims need replication.
:func:`repeat_scenario` runs the same scenario under independent seeds and
aggregates each summary metric with mean/min/max and the standard error,
so benches and reports can state e.g. "completeness 1.0 across 20 seeds"
instead of "completeness 1.0 once".

Replications are independent, so they parallelize embarrassingly: pass
``workers > 1`` to fan the per-seed runs over a process pool.  Each run
derives all randomness from its own seed and results are aggregated in
seed order, so the aggregate is bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.parallel import run_scenario_summaries
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.metrics.summary import SeriesSummary, summarize
from repro.util.tables import render_table


@dataclass(frozen=True)
class RepeatedResult:
    """Aggregated summaries over the repeated runs."""

    config: ScenarioConfig
    seeds: Tuple[int, ...]
    metrics: Dict[str, SeriesSummary]

    def mean(self, key: str) -> float:
        try:
            return self.metrics[key].mean
        except KeyError:
            raise ExperimentError(f"no metric {key!r} collected") from None

    def worst(self, key: str, lower_is_worse: bool = True) -> float:
        summary = self.metrics[key]
        return summary.minimum if lower_is_worse else summary.maximum

    def as_table(self) -> str:
        rows = [
            [key, s.mean, s.stderr, s.minimum, s.maximum]
            for key, s in sorted(self.metrics.items())
        ]
        return render_table(
            ["metric", "mean", "stderr", "min", "max"],
            rows,
            title=f"{len(self.seeds)} seeds",
        )


def check_seeds(seeds: Sequence[int]) -> Tuple[int, ...]:
    """Validate a replication seed list (non-empty, distinct)."""
    if not seeds:
        raise ExperimentError("seeds must be non-empty")
    if len(set(seeds)) != len(seeds):
        raise ExperimentError("seeds must be distinct")
    return tuple(int(s) for s in seeds)


def aggregate_summaries(
    config: ScenarioConfig,
    seeds: Sequence[int],
    summaries: Sequence[Dict[str, float]],
) -> RepeatedResult:
    """Fold per-seed summary dicts (in seed order) into a RepeatedResult.

    Shared by :func:`repeat_scenario` and the durable campaign runner
    (:mod:`repro.campaign`): both produce the same per-seed summaries, so
    routing them through one aggregation keeps a resumed or cache-served
    campaign bit-identical to a direct in-memory repeat.
    """
    collected: Dict[str, List[float]] = {}
    for summary in summaries:
        for key, value in summary.items():
            collected.setdefault(key, []).append(float(value))
    return RepeatedResult(
        config=config,
        seeds=tuple(int(s) for s in seeds),
        metrics={key: summarize(values) for key, values in collected.items()},
    )


def repeat_scenario(
    config: ScenarioConfig,
    seeds: Sequence[int],
    workers: Optional[int] = 1,
) -> RepeatedResult:
    """Run ``config`` once per seed; aggregate the scalar summaries.

    ``workers=1`` (default) runs the seeds serially; larger values (or
    ``None`` for all CPUs) fan the independent replications over a process
    pool.  Summaries are always aggregated in seed order, so the result is
    bit-identical for any worker count.
    """
    seeds = check_seeds(seeds)
    configs = [replace(config, seed=int(seed)) for seed in seeds]
    summaries = run_scenario_summaries(configs, workers=workers)
    return aggregate_summaries(config, seeds, summaries)
