"""Rendering experiment outputs as text tables."""

from __future__ import annotations

from typing import Iterable

from repro.experiments.ablations import AblationResult
from repro.experiments.figures import Claim, check_paper_claims
from repro.util.tables import render_table


def render_ablation(result: AblationResult) -> str:
    """One ablation as a table: rows are configurations."""
    keys: list[str] = []
    for row in result.rows:
        for key in row.metrics:
            if key not in keys:
                keys.append(key)
    headers = ["configuration", *keys]
    rows = [
        [row.label, *(row.metrics.get(k, float("nan")) for k in keys)]
        for row in result.rows
    ]
    return render_table(headers, rows, title=f"ablation: {result.name}")


def render_claims(results: Iterable[tuple[Claim, bool]] | None = None) -> str:
    """The paper-claims checklist as a table."""
    checked = list(results) if results is not None else check_paper_claims()
    rows = [
        [claim.claim_id, claim.statement, "PASS" if ok else "FAIL"]
        for claim, ok in checked
    ]
    return render_table(["claim", "statement", "status"], rows,
                        title="paper evaluation claims")
