"""Experiment harness: figure regeneration, ablations, scenario runs."""

from repro.experiments.ablations import (
    ablation_bgw_count,
    ablation_dch,
    ablation_digest,
    ablation_implicit_ack,
    ablation_peer_forwarding,
)
from repro.experiments.figures import (
    PAPER_CLAIMS,
    check_paper_claims,
    figure5_false_detection,
    figure6_false_detection_on_ch,
    figure7_incompleteness,
    render_figure,
)
from repro.experiments.parallel import (
    parallel_map,
    run_scenario_summaries,
    spawn_rngs,
    spawn_seed_sequences,
)
from repro.experiments.repeat import RepeatedResult, repeat_scenario
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.scenarios import (
    single_cluster_validation,
    validation_summary,
)

__all__ = [
    "figure5_false_detection",
    "figure6_false_detection_on_ch",
    "figure7_incompleteness",
    "render_figure",
    "PAPER_CLAIMS",
    "check_paper_claims",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "RepeatedResult",
    "repeat_scenario",
    "parallel_map",
    "run_scenario_summaries",
    "spawn_rngs",
    "spawn_seed_sequences",
    "single_cluster_validation",
    "validation_summary",
    "ablation_digest",
    "ablation_peer_forwarding",
    "ablation_bgw_count",
    "ablation_dch",
    "ablation_implicit_ack",
]
