"""Cluster-map topology in the trace: emission and reconstruction.

The spool is self-describing for *time* (``meta.scenario``) but, before
this module, said nothing about *structure* -- which nodes head which
clusters, who the deputies are, where the GW/BGW forwarding ladders sit.
The dashboard's cluster map needs exactly that, so runs now stamp one
``meta.topology`` record right after ``meta.scenario``:

- the event engine serializes its :class:`~repro.cluster.state.ClusterLayout`
  plus node positions (:func:`layout_topology_detail`);
- the array engine serializes its
  :class:`~repro.sim.array_engine.layout.ArrayLayout` flat arrays into
  the identical shape (:func:`array_topology_detail`);
- the rt runtime serializes the same :class:`ClusterLayout` it installs
  protocols from.

:func:`topology_view` replays a record stream into a
:class:`TopologyView` -- cluster membership crossed with the ground-truth
``sim.crash`` stream and the ``fds.detection`` verdicts, so the map can
show crashed-but-undetected vs detected nodes.  Spools written before
this record existed degrade gracefully (``found=False``; crash/detection
status is still reported per node).

Everything here is duck-typed over the layout objects (no imports from
``repro.cluster`` or ``repro.sim.array_engine``) to keep ``repro.obs``
dependency-free of the engines it observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.analyze import CRASH_KIND, META_KIND, TraceMeta, meta_payload
from repro.sim.trace import TraceRecord

#: Kind of the cluster-map record the runners emit after ``meta.scenario``.
TOPOLOGY_KIND = "meta.topology"

#: Coordinate rounding in the emitted record (display precision; keeps a
#: million-node topology line ~40% smaller than full float reprs).
_COORD_DECIMALS = 4


# ----------------------------------------------------------------------
# Emission side
# ----------------------------------------------------------------------
def layout_topology_detail(layout, positions) -> Dict[str, object]:
    """``meta.topology`` detail from a :class:`ClusterLayout` + placement.

    ``positions`` maps node id -> an object with ``x``/``y`` (``Vec2``).
    All values are plain JSON types; members include the head, matching
    :class:`~repro.cluster.state.Cluster` semantics.
    """
    clusters = [
        {
            "head": int(head),
            "members": sorted(int(m) for m in cluster.members),
            "deputies": [int(d) for d in cluster.deputies],
        }
        for head, cluster in sorted(layout.clusters.items())
    ]
    boundaries = [
        {
            "owner": int(owner),
            "peer": int(peer),
            "forwarders": [int(f) for f in boundary.all_forwarders],
        }
        for (owner, peer), boundary in sorted(layout.boundaries.items())
    ]
    nodes = sorted(int(n) for n in positions)
    return {
        "clusters": clusters,
        "boundaries": boundaries,
        "unclustered": sorted(int(n) for n in layout.unclustered),
        "nodes": nodes,
        "x": [round(float(positions[n].x), _COORD_DECIMALS) for n in nodes],
        "y": [round(float(positions[n].y), _COORD_DECIMALS) for n in nodes],
    }


def array_topology_detail(layout) -> Dict[str, object]:
    """``meta.topology`` detail from an :class:`ArrayLayout`.

    Emits the same shape as :func:`layout_topology_detail`: members
    include the head NID, boundary forwarders are member NIDs (PAD slots
    dropped), and unclustered nodes are those with ``assign == PAD``.
    """
    pad = -1  # repro.sim.array_engine.layout.PAD
    head_nids = [int(h) for h in layout.head_nids]
    clusters = []
    for c, head in enumerate(head_nids):
        row = layout.members[c]
        mask = layout.member_mask[c]
        members = sorted({head, *(int(m) for m in row[mask])})
        deputies = [int(d) for d in layout.deputies[c] if int(d) != pad]
        clusters.append(
            {"head": head, "members": members, "deputies": deputies}
        )
    clusters.sort(key=lambda entry: entry["head"])
    boundaries = []
    for b in range(len(layout.boundary_owner)):
        owner_cluster = int(layout.boundary_owner[b])
        forwarders = [
            int(layout.members[owner_cluster][int(slot)])
            for slot in layout.boundary_gateway_slots[b]
            if int(slot) != pad
        ]
        boundaries.append({
            "owner": head_nids[owner_cluster],
            "peer": head_nids[int(layout.boundary_peer[b])],
            "forwarders": forwarders,
        })
    boundaries.sort(key=lambda entry: (entry["owner"], entry["peer"]))
    unclustered = sorted(
        int(n)
        for n in range(layout.node_count)
        if int(layout.assign[n]) == pad
    )
    nodes = list(range(layout.node_count))
    return {
        "clusters": clusters,
        "boundaries": boundaries,
        "unclustered": unclustered,
        "nodes": nodes,
        "x": [round(float(v), _COORD_DECIMALS) for v in layout.xs],
        "y": [round(float(v), _COORD_DECIMALS) for v in layout.ys],
    }


# ----------------------------------------------------------------------
# Reconstruction side
# ----------------------------------------------------------------------
@dataclass
class TopologyView:
    """The cluster map a record stream describes, plus liveness status."""

    meta: TraceMeta = field(default_factory=TraceMeta)
    #: ``[{"head", "members", "deputies"}, ...]`` sorted by head.
    clusters: List[Dict[str, object]] = field(default_factory=list)
    #: ``[{"owner", "peer", "forwarders"}, ...]`` sorted by (owner, peer).
    boundaries: List[Dict[str, object]] = field(default_factory=list)
    unclustered: List[int] = field(default_factory=list)
    #: node -> (x, y); empty when the spool predates ``meta.topology``.
    positions: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    #: node -> crash time (ground truth).
    crash_times: Dict[int, float] = field(default_factory=dict)
    #: node -> first ``fds.detection`` time.
    first_detection: Dict[int, float] = field(default_factory=dict)
    #: Whether a ``meta.topology`` record was present.
    found: bool = False

    def roles(self) -> Dict[int, str]:
        """node -> ``head``/``deputy``/``gateway``/``member``/``unclustered``.

        A node holding several roles reports the most specific one, in
        the order head > deputy > gateway > member.
        """
        out: Dict[int, str] = {}
        for node in self.positions:
            out[node] = "member"
        for node in self.unclustered:
            out[node] = "unclustered"
        for boundary in self.boundaries:
            for forwarder in boundary["forwarders"]:
                out[int(forwarder)] = "gateway"
        for cluster in self.clusters:
            for member in cluster["members"]:
                out.setdefault(int(member), "member")
            for deputy in cluster["deputies"]:
                out[int(deputy)] = "deputy"
        for cluster in self.clusters:
            out[int(cluster["head"])] = "head"
        return out

    def cluster_of(self) -> Dict[int, int]:
        """node -> owning cluster's head id."""
        out: Dict[int, int] = {}
        for cluster in self.clusters:
            head = int(cluster["head"])
            for member in cluster["members"]:
                out[int(member)] = head
        return out


def topology_view(records: Iterable[TraceRecord]) -> TopologyView:
    """One-pass reduction of a record stream to a :class:`TopologyView`."""
    view = TopologyView()
    for record in records:
        if record.kind == META_KIND and not view.meta.found:
            view.meta = TraceMeta.from_record(record)
        elif record.kind == TOPOLOGY_KIND and not view.found:
            detail = record.detail
            view.clusters = [dict(c) for c in detail.get("clusters", [])]
            view.boundaries = [dict(b) for b in detail.get("boundaries", [])]
            view.unclustered = [int(n) for n in detail.get("unclustered", [])]
            nodes = detail.get("nodes", [])
            xs = detail.get("x", [])
            ys = detail.get("y", [])
            view.positions = {
                int(n): (float(x), float(y))
                for n, x, y in zip(nodes, xs, ys)
            }
            view.found = True
        elif record.kind == CRASH_KIND and record.node is not None:
            view.crash_times.setdefault(int(record.node), record.time)
        elif record.kind == "fds.detection":
            target = record.detail.get("target")
            if target is not None:
                view.first_detection.setdefault(int(target), record.time)
    return view


def topology_payload(view: TopologyView) -> Dict[str, object]:
    """The ``/api/topology`` document: per-node rows plus the cluster map."""
    roles = view.roles()
    owners = view.cluster_of()
    node_ids = sorted(
        set(view.positions)
        | set(roles)
        | set(view.crash_times)
        | set(view.first_detection)
    )
    nodes = []
    for node in node_ids:
        position = view.positions.get(node)
        nodes.append({
            "id": node,
            "role": roles.get(node, "member"),
            "cluster": owners.get(node),
            "x": None if position is None else position[0],
            "y": None if position is None else position[1],
            "crashed_at": view.crash_times.get(node),
            "detected_at": view.first_detection.get(node),
        })
    return {
        "found": view.found,
        "meta": meta_payload(view.meta),
        "clusters": [
            {
                "head": int(c["head"]),
                "size": len(c["members"]),
                "deputies": [int(d) for d in c["deputies"]],
            }
            for c in view.clusters
        ],
        "boundaries": view.boundaries,
        "unclustered": view.unclustered,
        "nodes": nodes,
        "crashed": len(view.crash_times),
        "detected": len(view.first_detection),
    }
