"""Wall-clock attribution of simulation time to named phases.

The profiler answers "where did the run spend its time" without a
sampling profiler's noise: the engine and the protocol stack bracket
their own hot sections (radio fan-out, the FDS rounds, inter-cluster
forwarding, event-heap churn) and charge the elapsed wall clock to a
phase name.

The cost discipline mirrors :class:`~repro.sim.trace.Tracer.enabled`:
every instrumented call site does ::

    profiler = sim.profiler
    if profiler.enabled:
        t0 = perf_counter()
        ...work...
        profiler.add(PHASE, t0)
    else:
        ...work...

so a disabled profiler (the default :data:`NULL_PROFILER`) costs one
attribute load and one branch per hot call -- measured at <=2% on
``bench_hotpaths`` -- and an enabled one costs two clock reads plus one
dict update.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple

#: Canonical phase names.  Free-form strings are accepted too; these are
#: the ones the built-in instrumentation charges.
PHASE_RADIO_TRANSMIT = "radio.transmit"
PHASE_RADIO_DELIVER = "radio.deliver"
PHASE_FDS_R1 = "fds.r1"
PHASE_FDS_R2 = "fds.r2"
PHASE_FDS_R3 = "fds.r3"
PHASE_FDS_R3_END = "fds.r3end"
PHASE_FDS_INTERCLUSTER = "fds.intercluster"
PHASE_SIM_HEAP = "sim.heap"
# Round-level array engine sections (repro.sim.array_engine): layout
# construction, the whole per-execution loop, and its four inner stages
# (delivery-mask draws, detection/refutation rules, update/DCH sync,
# inter-cluster fixpoint), plus final property scoring.
PHASE_ARRAY_LAYOUT = "array.layout"
PHASE_ARRAY_ROUNDS = "array.rounds"
PHASE_ARRAY_DRAWS = "array.draws"
PHASE_ARRAY_RULES = "array.rules"
PHASE_ARRAY_SYNC = "array.sync"
PHASE_ARRAY_INTERCLUSTER = "array.intercluster"
PHASE_ARRAY_SCORE = "array.score"


class PhaseProfiler:
    """Accumulates (seconds, calls) per phase name."""

    enabled: bool = True

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._started = perf_counter()

    def add(self, phase: str, started: float) -> None:
        """Charge the time since ``started`` (a ``perf_counter`` stamp)."""
        elapsed = perf_counter() - started
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed
        self.calls[phase] = self.calls.get(phase, 0) + 1

    def add_seconds(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Charge an externally measured duration (merging sub-profiles)."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + calls

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()
        self._started = perf_counter()

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def shares(self) -> List[Tuple[str, float, float, int]]:
        """``(phase, seconds, share_of_profiled_time, calls)`` rows,
        largest first.  Shares are of *profiled* time: phases nest (a
        delivery triggers receive processing), so they are a breakdown,
        not a partition of wall clock.
        """
        total = self.total_seconds
        rows = [
            (phase, secs, (secs / total if total else 0.0), self.calls[phase])
            for phase, secs in self.seconds.items()
        ]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows


class NullProfiler(PhaseProfiler):
    """The disabled default: hot paths skip all bookkeeping."""

    enabled = False

    def add(self, phase: str, started: float) -> None:  # pragma: no cover
        pass

    def add_seconds(self, phase: str, seconds: float, calls: int = 1) -> None:
        pass


#: Shared disabled instance; safe because it never mutates state.
NULL_PROFILER = NullProfiler()
