"""Unified observability: metrics registry, phase profiler, trace spooling.

One plane serves every workload in the repository:

- :class:`~repro.obs.registry.MetricsRegistry` holds counters, gauges,
  and fixed-bucket histograms that components update through cheap
  handles, with JSON and Prometheus-text exposition;
- :class:`~repro.obs.profiler.PhaseProfiler` attributes wall-clock time
  to simulation phases (radio fan-out, FDS rounds, inter-cluster
  forwarding, event-heap churn) behind an ``enabled`` fast-path gate so
  disabled overhead is a single attribute load per hot call;
- :class:`~repro.obs.spool.SpoolingTracer` streams
  :class:`~repro.sim.trace.TraceRecord`\\ s to gzip'd JSONL on disk,
  bounding memory where :class:`~repro.sim.trace.RecordingTracer` would
  grow without limit;
- :mod:`repro.obs.analyze` + the ``repro trace`` CLI load spooled traces
  back and reconstruct summaries, timelines, detection latencies, and
  per-report message lineage.
"""

from repro.obs.profiler import NULL_PROFILER, NullProfiler, PhaseProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PHI_LATENCY_BUCKETS,
)
from repro.obs.spool import SpoolingTracer, iter_spool, read_spool

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NullProfiler",
    "PHI_LATENCY_BUCKETS",
    "PhaseProfiler",
    "SpoolingTracer",
    "iter_spool",
    "read_spool",
]
