"""Post-hoc trace analysis: summaries, timelines, latency, lineage.

Everything here consumes an *iterable* of
:class:`~repro.sim.trace.TraceRecord` -- a ``RecordingTracer.records``
list or a streamed :func:`~repro.obs.spool.iter_spool` -- and reduces it
in one pass, so analyzing a multi-gigabyte spool never materializes it.

The scenario runner stamps every run with a ``meta.scenario`` record
(phi, thop, node count, seed) and, when profiling, one ``profile.phase``
record per phase; the analyzers use those to express detection latency
in heartbeat-interval (phi) units and to report per-phase time shares
from the spool alone.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.registry import (
    HOP_LATENCY_BUCKETS,
    PHI_LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.sim.trace import TraceRecord

#: Kind of the run-description record the scenario runner emits first.
META_KIND = "meta.scenario"
#: Kind of the per-phase wall-clock records emitted at run end.
PROFILE_KIND = "profile.phase"
#: Kind the node runtime emits when a node fail-stops.
CRASH_KIND = "sim.crash"

#: Detail keys that name sets of node ids a record is "about".
_NODE_SET_KEYS = ("failures", "covered", "pending", "admissions")
#: Detail keys that name a single node id a record is "about".
_NODE_KEYS = ("target", "old_head", "sender")


@dataclass
class TraceMeta:
    """The run parameters recovered from a ``meta.scenario`` record."""

    phi: float = 1.0
    thop: float = 0.0
    nodes: int = 0
    seed: Optional[int] = None
    executions: int = 0
    fds_start: float = 0.0
    #: ``"phi"`` for simulator traces (virtual seconds; latencies are
    #: displayed in heartbeat intervals) or ``"wall_ms"`` for runtime
    #: traces (wall-clock seconds; latencies are also meaningful in
    #: milliseconds).  Old spools omit the field and default to "phi".
    timebase: str = "phi"
    found: bool = False

    @classmethod
    def from_record(cls, record: TraceRecord) -> "TraceMeta":
        d = record.detail
        return cls(
            phi=float(d.get("phi", 1.0)),
            thop=float(d.get("thop", 0.0)),
            nodes=int(d.get("nodes", 0)),
            seed=d.get("seed"),
            executions=int(d.get("executions", 0)),
            fds_start=float(d.get("fds_start", 0.0)),
            timebase=str(d.get("timebase", "phi")),
            found=True,
        )

    @property
    def wall_clock(self) -> bool:
        """Whether timestamps are wall-clock seconds (runtime trace)."""
        return self.timebase == "wall_ms"

    def execution_of(self, time: float) -> int:
        """Which FDS execution a timestamp falls in (floor by phi)."""
        if self.phi <= 0:
            return 0
        return int((time - self.fds_start) // self.phi)

    def round_label(self, time: float) -> str:
        """R-1/R-2/R-3 (or the gap) a timestamp falls in."""
        if self.phi <= 0 or self.thop <= 0:
            return "?"
        offset = (time - self.fds_start) % self.phi
        if offset < self.thop:
            return "R-1"
        if offset < 2 * self.thop:
            return "R-2"
        if offset < 3 * self.thop:
            return "R-3"
        return "post"


@dataclass
class TraceSummary:
    """One-pass reduction of a trace."""

    meta: TraceMeta = field(default_factory=TraceMeta)
    records: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None
    kinds: Counter = field(default_factory=Counter)
    #: phase -> (seconds, calls), from ``profile.phase`` records.
    phases: Dict[str, Tuple[float, int]] = field(default_factory=dict)
    #: node -> crash time.
    crash_times: Dict[int, float] = field(default_factory=dict)
    #: target -> first detection time.
    first_detection: Dict[int, float] = field(default_factory=dict)
    #: per-hop delivery latencies were observed into the registry.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def span(self) -> float:
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    def detection_latencies_phi(self) -> Dict[int, Optional[float]]:
        """Crash-to-first-detection latency per crashed node, in phi units
        (``None`` when the crash was never detected)."""
        phi = self.meta.phi if self.meta.phi > 0 else 1.0
        out: Dict[int, Optional[float]] = {}
        for node, crashed_at in sorted(self.crash_times.items()):
            detected_at = self.first_detection.get(node)
            out[node] = (
                None if detected_at is None else (detected_at - crashed_at) / phi
            )
        return out

    def phase_shares(self) -> List[Tuple[str, float, float, int]]:
        """``(phase, seconds, share, calls)``, largest first."""
        total = sum(seconds for seconds, _ in self.phases.values())
        rows = [
            (phase, seconds, (seconds / total if total else 0.0), calls)
            for phase, (seconds, calls) in self.phases.items()
        ]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows


def summarize(records: Iterable[TraceRecord]) -> TraceSummary:
    """Reduce a record stream to a :class:`TraceSummary` in one pass."""
    summary = TraceSummary()
    hop = summary.registry.histogram(
        "repro_hop_latency_seconds",
        HOP_LATENCY_BUCKETS,
        help="Per-hop delivery latency of received copies",
    )
    for record in records:
        summary.records += 1
        if summary.first_time is None:
            summary.first_time = record.time
        summary.last_time = record.time
        summary.kinds[record.kind] += 1
        if record.kind == META_KIND and not summary.meta.found:
            summary.meta = TraceMeta.from_record(record)
        elif record.kind == PROFILE_KIND:
            phase = str(record.detail.get("phase", "?"))
            seconds = float(record.detail.get("seconds", 0.0))
            calls = int(record.detail.get("calls", 0))
            old_s, old_c = summary.phases.get(phase, (0.0, 0))
            summary.phases[phase] = (old_s + seconds, old_c + calls)
        elif record.kind == CRASH_KIND and record.node is not None:
            summary.crash_times.setdefault(int(record.node), record.time)
        elif record.kind == "fds.detection":
            target = record.detail.get("target")
            if target is not None:
                summary.first_detection.setdefault(int(target), record.time)
        elif record.kind == "radio.rx":
            latency = record.detail.get("latency")
            if latency is not None:
                hop.observe(float(latency))
    phi_hist = summary.registry.histogram(
        "repro_detection_latency_phi",
        PHI_LATENCY_BUCKETS,
        help="Crash-to-first-detection latency in heartbeat intervals",
    )
    for latency in summary.detection_latencies_phi().values():
        if latency is not None:
            phi_hist.observe(latency)
    counters = summary.registry
    counters.counter(
        "repro_trace_records_total", "Records in the analyzed trace"
    ).inc(summary.records)
    counters.counter(
        "repro_trace_detections_total", "fds.detection events"
    ).inc(summary.kinds.get("fds.detection", 0))
    counters.counter(
        "repro_trace_crashes_total", "sim.crash events"
    ).inc(len(summary.crash_times))
    return summary


def timeline(
    records: Iterable[TraceRecord],
    bucket: Optional[float] = None,
    groups: Tuple[str, ...] = ("radio", "fds", "sim"),
) -> Tuple[List[Tuple[float, Dict[str, int]]], TraceMeta]:
    """Bucketed event counts per top-level kind group.

    ``bucket`` defaults to the trace's phi (one row per FDS execution).
    Returns ``(rows, meta)`` where each row is ``(bucket_start, counts)``.
    """
    meta = TraceMeta()
    buckets: Dict[int, Dict[str, int]] = {}
    pending: List[TraceRecord] = []

    def charge(record: TraceRecord, width: float) -> None:
        index = int(record.time // width) if width > 0 else 0
        counts = buckets.setdefault(index, {g: 0 for g in groups})
        group = record.kind.split(".", 1)[0]
        if group in counts:
            counts[group] += 1

    width = bucket if bucket is not None else 0.0
    for record in records:
        if record.kind == META_KIND and not meta.found:
            meta = TraceMeta.from_record(record)
            if bucket is None:
                width = meta.phi
        if width <= 0.0:
            pending.append(record)
        else:
            for held in pending:
                charge(held, width)
            pending.clear()
            charge(record, width)
    if width <= 0.0:
        width = 1.0
        for held in pending:
            charge(held, width)
        pending.clear()
    rows = [
        (index * width, counts) for index, counts in sorted(buckets.items())
    ]
    return rows, meta


# ----------------------------------------------------------------------
# Lineage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LineageEvent:
    """One step in a failure report's reconstructed path."""

    time: float
    execution: int
    round: str
    kind: str
    node: Optional[int]
    note: str


@dataclass
class Lineage:
    """The reconstructed life of one failure report (``target``)."""

    target: int
    crash_time: Optional[float]
    events: List[LineageEvent]
    detectors: Tuple[int, ...]
    forward_hops: int
    relays: int

    @property
    def detected(self) -> bool:
        return bool(self.detectors)

    @property
    def crossed_boundary(self) -> bool:
        return self.forward_hops > 0 and self.relays > 0


def _mentions(record: TraceRecord, target: int) -> bool:
    detail = record.detail
    for key in _NODE_KEYS:
        value = detail.get(key)
        if value is not None and int(value) == target:
            return True
    for key in _NODE_SET_KEYS:
        value = detail.get(key)
        if value and target in (int(v) for v in value):
            return True
    return False


def _note_for(record: TraceRecord) -> str:
    d = record.detail
    kind = record.kind
    if kind == CRASH_KIND:
        return "node fail-stops (ground truth)"
    if kind == "fds.detection":
        return (f"detected by node {d.get('detector')} "
                f"in execution {d.get('execution')}")
    if kind == "fds.takeover":
        return f"DCH {d.get('new_head')} deposes CH {d.get('old_head')}"
    if kind == "fds.origin_watch":
        return f"origin CH arms forwarding watch on {d.get('failures')}"
    if kind == "fds.origin_covered":
        return f"origin overheard forwarding of {d.get('covered')}"
    if kind == "fds.origin_rebroadcast":
        return (f"origin rebroadcast, retry {d.get('retry')} "
                f"(pending {d.get('pending')})")
    if kind == "fds.inter_duty":
        return (f"boundary duty toward head {d.get('dest')} "
                f"(rank {d.get('rank')}, origin {d.get('origin')})")
    if kind == "fds.inter_arm":
        return (f"implicit-ack timer toward {d.get('dest')} "
                f"({'standby' if d.get('standby') else 'post-forward'})")
    if kind == "fds.report_forwarded":
        return (f"FailureReport {d.get('failures')} forwarded across the "
                f"boundary to head {d.get('peer')}")
    if kind == "fds.inter_ack":
        return f"coverage by head {d.get('peer')} acknowledges {d.get('covered')}"
    if kind == "fds.inter_release":
        return f"watch toward {d.get('dest')} released"
    if kind == "fds.relay":
        return (f"destination CH relays {d.get('failures')} into its "
                f"cluster (origin {d.get('origin')})")
    if kind == "fds.refutation":
        return "suspicion refuted by direct liveness evidence"
    if kind == "fds.admission":
        return f"re-admitted as member ({d.get('admissions')})"
    return ", ".join(f"{k}={v}" for k, v in sorted(d.items()))


def lineage(records: Iterable[TraceRecord], target: int) -> Lineage:
    """Reconstruct the R-1 -> R-3 -> inter-cluster path of one report.

    ``target`` is the report's subject (the crashed node's id).  The
    chain is everything the trace says about that node, in time order:
    the ground-truth crash, the R-3 detection at its cluster's authority,
    the origin watch, each boundary forwarding (``fds.report_forwarded``),
    the destination relays, and any refutations -- each stamped with the
    execution index and round (R-1/R-2/R-3) it fell in.
    """
    target = int(target)
    meta = TraceMeta()
    matched: List[TraceRecord] = []
    crash_time: Optional[float] = None
    detectors: List[int] = []
    forward_hops = 0
    relays = 0
    for record in records:
        if record.kind == META_KIND and not meta.found:
            meta = TraceMeta.from_record(record)
            continue
        if record.kind == CRASH_KIND:
            if record.node is not None and int(record.node) == target:
                crash_time = record.time
                matched.append(record)
            continue
        if not record.kind.startswith("fds."):
            continue
        if not _mentions(record, target):
            continue
        matched.append(record)
        if record.kind == "fds.detection":
            detector = record.detail.get("detector")
            if detector is not None and int(detector) not in detectors:
                detectors.append(int(detector))
        elif record.kind == "fds.report_forwarded":
            forward_hops += 1
        elif record.kind == "fds.relay":
            relays += 1
    if not matched:
        raise ConfigurationError(
            f"trace has no events about node {target} (crash, detection, "
            "or forwarding) -- wrong report id, or the spool filtered fds.*"
        )
    matched.sort(key=lambda r: r.time)
    events = [
        LineageEvent(
            time=record.time,
            execution=meta.execution_of(record.time),
            round=meta.round_label(record.time),
            kind=record.kind,
            node=None if record.node is None else int(record.node),
            note=_note_for(record),
        )
        for record in matched
    ]
    return Lineage(
        target=target,
        crash_time=crash_time,
        events=events,
        detectors=tuple(detectors),
        forward_hops=forward_hops,
        relays=relays,
    )


# ----------------------------------------------------------------------
# JSON payloads (one machine-readable surface for the CLI's ``--json``
# flags and the dashboard's ``/api/*`` endpoints -- both serialize these
# with ``json.dumps(payload, indent=2, sort_keys=True)``, so the two
# surfaces agree byte for byte on the same spool).
# ----------------------------------------------------------------------
def meta_payload(meta: TraceMeta) -> Dict[str, object]:
    return {
        "phi": meta.phi,
        "thop": meta.thop,
        "nodes": meta.nodes,
        "seed": meta.seed,
        "executions": meta.executions,
        "timebase": meta.timebase,
    }


def summary_payload(summary: TraceSummary) -> Dict[str, object]:
    """The ``repro trace summarize --json`` / ``/api/summary`` document."""
    return {
        "records": summary.records,
        "span_s": summary.span,
        "meta": meta_payload(summary.meta),
        "kinds": dict(sorted(summary.kinds.items())),
        "phases": {
            phase: {"seconds": seconds, "share": share, "calls": calls}
            for phase, seconds, share, calls in summary.phase_shares()
        },
        "detection_latency_phi": {
            str(node): latency
            for node, latency in summary.detection_latencies_phi().items()
        },
        "metrics": summary.registry.to_json(),
    }


def timeline_payload(
    rows: List[Tuple[float, Dict[str, int]]],
    meta: TraceMeta,
    bucket: Optional[float] = None,
) -> Dict[str, object]:
    """The ``repro trace timeline --json`` / ``/api/timeline`` document."""
    width = bucket if bucket is not None else meta.phi
    groups = sorted(rows[0][1]) if rows else []
    return {
        "bucket_s": width,
        "groups": groups,
        "meta": meta_payload(meta),
        "rows": [
            {"t_start": start, "counts": dict(sorted(counts.items()))}
            for start, counts in rows
        ],
    }


def latency_payload(summary: TraceSummary) -> Dict[str, object]:
    """The ``repro trace latency --json`` / ``/api/latency`` document."""
    phi = summary.meta.phi
    wall = summary.meta.wall_clock
    crashes = []
    for node, latency in sorted(summary.detection_latencies_phi().items()):
        detected_at = summary.first_detection.get(node)
        row: Dict[str, object] = {
            "node": node,
            "crashed_at": summary.crash_times[node],
            "detected_at": detected_at,
            "latency_phi": latency,
        }
        if wall:
            row["latency_ms"] = (
                None if latency is None else 1000 * latency * phi
            )
        crashes.append(row)
    return {"meta": meta_payload(summary.meta), "crashes": crashes}


def lineage_payload(chain: Lineage) -> Dict[str, object]:
    """The ``repro trace lineage --json`` / ``/api/lineage`` document."""
    return {
        "target": chain.target,
        "crash_time": chain.crash_time,
        "detected": chain.detected,
        "detectors": list(chain.detectors),
        "forward_hops": chain.forward_hops,
        "relays": chain.relays,
        "events": [
            {
                "time": event.time,
                "execution": event.execution,
                "round": event.round,
                "kind": event.kind,
                "node": event.node,
                "note": event.note,
            }
            for event in chain.events
        ],
    }
