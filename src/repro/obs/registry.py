"""A process-local metrics registry with cheap update handles.

The registry is the single schema every workload reports through: the
scenario runner folds a finished run into it, the campaign runner
re-expresses its live telemetry (reps/sec, cache-hit ratio, ETA) on it,
and the ``repro trace`` CLI rebuilds the same metric families from a
spooled trace.  Exposition is dual: :meth:`MetricsRegistry.to_json` for
artifacts and tests, :meth:`MetricsRegistry.render_prometheus` for
anything that scrapes the standard text format.

Handles are deliberately dumb objects -- a counter is one float behind
``inc()`` -- so hot loops can hold them directly instead of paying a
registry lookup per update.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default detection-latency buckets, in heartbeat-interval (phi) units.
#: The paper's rule detects a pre-epoch crash within the execution that
#: follows it, so mass should sit in (0, 2]; the tail buckets catch
#: multi-hop inter-cluster propagation.
PHI_LATENCY_BUCKETS: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)

#: Default per-hop delivery-latency buckets, in seconds (the medium's
#: ``max_delay`` defaults to 0.1 s, so these resolve its distribution).
HOP_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.04, 0.06, 0.08, 0.1, 0.2, 0.5,
)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ConfigurationError(
            f"metric name must be non-empty [A-Za-z0-9_:]+, got {name!r}"
        )
    if name[0].isdigit():
        raise ConfigurationError(f"metric name cannot start with a digit: {name!r}")
    return name


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can go anywhere."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    always exists.  ``observe`` is a bisection over a short tuple -- cheap
    enough to sit on a per-delivery path when tracing is enabled.
    """

    __slots__ = ("name", "help", "buckets", "counts", "inf_count", "sum", "count")

    def __init__(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs >= 1 bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram {name} buckets must be strictly increasing: {bounds}"
            )
        if any(math.isinf(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name}: +Inf bucket is implicit, do not list it"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.inf_count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.inf_count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metric families; get-or-create handles, dual exposition."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- handle acquisition --------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._counters[name] = Counter(_check_name(name), help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._gauges[name] = Gauge(_check_name(name), help)
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        help: str = "",
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._histograms[name] = Histogram(
                _check_name(name), buckets, help
            )
        elif tuple(float(b) for b in buckets) != metric.buckets:
            raise ConfigurationError(
                f"histogram {name} re-registered with different buckets"
            )
        return metric

    def _check_free(self, name: str) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if name in family:
                raise ConfigurationError(
                    f"metric {name!r} already registered with another type"
                )

    # -- exposition ----------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        return tuple(
            sorted([*self._counters, *self._gauges, *self._histograms])
        )

    def to_json(self) -> Dict[str, object]:
        """Plain-dict snapshot (stable key order) for JSON artifacts."""
        payload: Dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            payload["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            payload["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            payload["histograms"][name] = {
                "buckets": list(h.buckets),
                "counts": list(h.counts),
                "inf_count": h.inf_count,
                "sum": h.sum,
                "count": h.count,
            }
        return payload

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4).

        Deviations from the format are normalized at render time, keeping
        :meth:`to_json` (and the in-process handle names) unchanged:

        - counters are exposed under the ``_total`` suffix convention --
          a counter registered without it gains the suffix here;
        - HELP text escapes backslash and line feed (``\\\\`` / ``\\n``),
          per the 0.0.4 escaping rules for help lines;
        - each histogram emits its cumulative buckets ending in the
          mandatory ``+Inf`` bucket, then ``_sum``, then ``_count``.
        """
        lines: List[str] = []
        for name in sorted(self._counters):
            metric = self._counters[name]
            exposed = name if name.endswith("_total") else name + "_total"
            if metric.help:
                lines.append(f"# HELP {exposed} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed} {_fmt(metric.value)}")
        for name in sorted(self._gauges):
            metric = self._gauges[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(metric.value)}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            if h.help:
                lines.append(f"# HELP {name} {_escape_help(h.help)}")
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in h.cumulative():
                le = "+Inf" if math.isinf(bound) else _fmt(bound)
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(h.sum)}")
            lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + "\n" if lines else ""

    # -- merging -------------------------------------------------------
    def merge_json(self, payload: Dict[str, object]) -> None:
        """Fold a :meth:`to_json` snapshot into this registry.

        Counters accumulate, gauges take the incoming value (last write
        wins), histograms add element-wise -- re-merged buckets must
        match or a :class:`ConfigurationError` is raised.  This is how
        the dashboard's ``/metrics`` endpoint folds the per-store
        persisted campaign snapshots (``metrics.json``, the JSON dual of
        ``metrics.prom``) into one exposition.
        """
        for name, value in dict(payload.get("counters", {})).items():
            self.counter(name).inc(float(value))
        for name, value in dict(payload.get("gauges", {})).items():
            self.gauge(name).set(float(value))
        for name, data in dict(payload.get("histograms", {})).items():
            h = self.histogram(name, data["buckets"])
            counts = list(data["counts"])
            if len(counts) != len(h.counts):
                raise ConfigurationError(
                    f"histogram {name} snapshot has {len(counts)} buckets, "
                    f"registry has {len(h.counts)}"
                )
            for i, n in enumerate(counts):
                h.counts[i] += int(n)
            h.inf_count += int(data.get("inf_count", 0))
            h.sum += float(data.get("sum", 0.0))
            h.count += int(data.get("count", 0))

    # -- folding -------------------------------------------------------
    def observe_all(self, name: str, values: Iterable[float],
                    buckets: Sequence[float], help: str = "") -> Histogram:
        """Histogram get-or-create plus a batch of observations."""
        h = self.histogram(name, buckets, help=help)
        for value in values:
            h.observe(value)
        return h


def _fmt(value: float) -> str:
    """Prometheus number formatting: integers without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    """0.0.4 HELP-line escaping: backslash first, then line feed."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def scenario_metrics(
    result,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold a finished :class:`~repro.experiments.runner.ScenarioResult`
    into a registry: message counters, loss rate, completeness/accuracy,
    and the detection-latency histogram in phi units.
    """
    reg = registry if registry is not None else MetricsRegistry()
    messages = result.messages
    reg.counter("repro_radio_transmissions_total",
                "Transmissions on the shared medium").inc(messages.transmissions)
    reg.counter("repro_radio_deliveries_total",
                "Copies delivered to live receivers").inc(messages.deliveries)
    reg.counter("repro_radio_losses_total",
                "Copies dropped by the loss model").inc(messages.losses)
    reg.gauge("repro_radio_observed_loss_rate",
              "Observed copy-loss fraction").set(messages.loss_rate)
    reg.gauge("repro_scenario_nodes", "Deployed node count").set(
        len(result.network)
    )
    reg.gauge("repro_scenario_mean_completeness",
              "Mean per-failure completeness").set(
        result.properties.mean_completeness
    )
    reg.counter("repro_scenario_accuracy_violations_total",
                "Operational nodes suspected by operational nodes").inc(
        len(result.properties.accuracy_violations)
    )
    phi = result.config.fds.phi
    latencies = [
        v / phi for v in result.detection_latencies.values() if v is not None
    ]
    reg.observe_all(
        "repro_detection_latency_phi",
        latencies,
        PHI_LATENCY_BUCKETS,
        help="Crash-to-first-detection latency in heartbeat intervals",
    )
    return reg
