"""Backend of ``python -m repro trace summarize|timeline|lineage|latency``.

Loads a trace spool (gzip'd or plain JSONL, written by
:class:`~repro.obs.spool.SpoolingTracer` or serialized from a
:class:`~repro.sim.trace.RecordingTracer`) and renders the same aligned
tables the campaign and scenario commands print, so a spooled run and a
live run read identically.
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.obs.analyze import (
    Lineage,
    TraceSummary,
    latency_payload,
    lineage,
    lineage_payload,
    summarize,
    summary_payload,
    timeline,
    timeline_payload,
)
from repro.obs.spool import iter_spool
from repro.util.tables import render_table


def render_json(payload: dict) -> str:
    """The one JSON serialization both the CLI and the dashboard use.

    ``repro serve`` returns exactly these bytes, so an endpoint response
    and the matching ``--json`` CLI output agree byte for byte.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def add_trace_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``trace`` subcommand tree on the root parser."""
    trace = sub.add_parser(
        "trace", help="analyze a spooled trace (summaries, lineage, latency)"
    )
    actions = trace.add_subparsers(dest="trace_action", required=True)

    def _spool_arg(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("spool", type=str,
                            help="trace spool path (.jsonl or .jsonl.gz)")

    summ = actions.add_parser(
        "summarize", help="record counts, phase time shares, latency histogram"
    )
    _spool_arg(summ)
    summ.add_argument("--json", action="store_true",
                      help="emit the reduction as JSON instead of tables")
    summ.add_argument("--metrics-out", type=str, default="",
                      help="also write the registry in Prometheus text format")

    tl = actions.add_parser("timeline", help="per-interval event counts")
    _spool_arg(tl)
    tl.add_argument("--bucket", type=float, default=None,
                    help="bucket width in seconds (default: the trace's phi)")
    tl.add_argument("--json", action="store_true",
                    help="emit the bucketed rows as JSON instead of a table")

    lin = actions.add_parser(
        "lineage", help="reconstruct one failure report's propagation path"
    )
    _spool_arg(lin)
    lin.add_argument("report_id", type=int,
                     help="the failed node's id (the report's subject)")
    lin.add_argument("--json", action="store_true",
                     help="emit the reconstructed chain as JSON")

    lat = actions.add_parser(
        "latency", help="per-crash detection latency in phi units"
    )
    _spool_arg(lat)
    lat.add_argument("--json", action="store_true",
                     help="emit per-crash latencies as JSON")


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        handler = {
            "summarize": _cmd_summarize,
            "timeline": _cmd_timeline,
            "lineage": _cmd_lineage,
            "latency": _cmd_latency,
        }[args.trace_action]
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1


# ----------------------------------------------------------------------
def _load_summary(path: str) -> TraceSummary:
    return summarize(iter_spool(Path(path)))


def _cmd_summarize(args: argparse.Namespace) -> int:
    summary = _load_summary(args.spool)
    if getattr(args, "json", False):
        print(render_json(summary_payload(summary)), end="")
    else:
        _print_summary(summary)
    if args.metrics_out:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(summary.registry.render_prometheus(), encoding="utf-8")
        print(f"\nmetrics written to {out}")
    return 0


def _print_summary(summary: TraceSummary) -> None:
    meta = summary.meta
    header = (
        f"{summary.records} record(s) over {summary.span:.3f} s"
    )
    if meta.found:
        header += (
            f"; scenario: {meta.nodes} nodes, phi={meta.phi}, "
            f"thop={meta.thop}, seed={meta.seed}"
        )
        if meta.wall_clock:
            header += " (wall-clock runtime trace)"
    print(header)
    print()
    kind_rows = [[kind, count] for kind, count in sorted(summary.kinds.items())]
    print(render_table(["kind", "count"], kind_rows, title="Record kinds"))
    shares = summary.phase_shares()
    if shares:
        print()
        print(render_table(
            ["phase", "seconds", "share", "calls"],
            [[p, s, f"{100 * share:.1f}%", c] for p, s, share, c in shares],
            title="Phase time shares (profiled wall clock)",
        ))
    if summary.crash_times:
        print()
        _print_latency_histogram(summary)


def _print_latency_histogram(summary: TraceSummary) -> None:
    latencies = summary.detection_latencies_phi()
    detected = [v for v in latencies.values() if v is not None]
    undetected = sum(1 for v in latencies.values() if v is None)
    hist = summary.registry._histograms.get("repro_detection_latency_phi")
    rows = []
    if hist is not None:
        for bound, cumulative in hist.cumulative():
            label = "+Inf" if math.isinf(bound) else f"<= {bound:g} phi"
            rows.append([label, cumulative])
    if detected:
        mean_phi = sum(detected) / len(detected)
        mean = f"mean {mean_phi:.3f} phi"
        if summary.meta.wall_clock:
            mean += f" = {1000 * mean_phi * summary.meta.phi:.1f} ms"
        title = (
            f"Detection latency ({len(detected)} detected, "
            f"{undetected} undetected of {len(latencies)} crash(es); {mean})"
        )
    else:
        title = f"Detection latency ({undetected} crash(es), none detected)"
    print(render_table(
        ["latency bucket", "crashes detected"], rows, title=title,
    ))


def _cmd_timeline(args: argparse.Namespace) -> int:
    rows, meta = timeline(iter_spool(Path(args.spool)), bucket=args.bucket)
    if getattr(args, "json", False):
        print(render_json(timeline_payload(rows, meta, bucket=args.bucket)),
              end="")
        return 0
    if not rows:
        print("empty trace")
        return 0
    groups = sorted(rows[0][1])
    table = [
        [start, *(counts[g] for g in groups)] for start, counts in rows
    ]
    width = args.bucket if args.bucket is not None else meta.phi
    print(render_table(
        ["t_start", *groups], table,
        title=f"Events per {width:g} s bucket",
    ))
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    chain = lineage(iter_spool(Path(args.spool)), args.report_id)
    if getattr(args, "json", False):
        print(render_json(lineage_payload(chain)), end="")
    else:
        _print_lineage(chain)
    return 0 if chain.detected else 1


def _print_lineage(chain: Lineage) -> None:
    crash = (
        f"crashed at t={chain.crash_time:.3f}"
        if chain.crash_time is not None
        else "crash not in trace"
    )
    print(
        f"report lineage for node {chain.target}: {crash}; "
        f"detected by {list(chain.detectors) or 'nobody'}; "
        f"{chain.forward_hops} boundary forwarding(s), "
        f"{chain.relays} relay(s)"
    )
    rows = [
        [
            f"{event.time:.3f}",
            event.execution,
            event.round,
            "-" if event.node is None else event.node,
            event.kind,
            event.note,
        ]
        for event in chain.events
    ]
    print(render_table(
        ["t", "exec", "round", "node", "event", "what happened"], rows,
    ))


def _cmd_latency(args: argparse.Namespace) -> int:
    summary = _load_summary(args.spool)
    latencies = summary.detection_latencies_phi()
    if getattr(args, "json", False):
        print(render_json(latency_payload(summary)), end="")
        return 0
    if not latencies:
        print("trace records no crashes")
        return 0
    phi = summary.meta.phi
    wall = summary.meta.wall_clock
    rows = []
    for node, latency in sorted(latencies.items()):
        crashed_at = summary.crash_times[node]
        detected_at = summary.first_detection.get(node)
        row = [
            node,
            f"{crashed_at:.3f}",
            "-" if detected_at is None else f"{detected_at:.3f}",
            "undetected" if latency is None else f"{latency:.3f}",
        ]
        if wall:
            row.append(
                "-" if latency is None else f"{1000 * latency * phi:.1f}"
            )
        rows.append(row)
    headers = ["node", "crashed_at", "first_detection", "latency (phi)"]
    if wall:
        headers.append("latency (ms)")
        title = f"Detection latency, phi={phi:g} wall seconds"
    else:
        title = f"Detection latency, phi={phi:g} s"
    print(render_table(headers, rows, title=title))
    return 0
