"""Disk-spooling tracer: bounded memory, gzip'd JSONL on disk.

:class:`~repro.sim.trace.RecordingTracer` keeps every record in memory,
which is unusable for large-field or soak runs (a 200-node scenario
emits hundreds of thousands of radio records per execution).  A
:class:`SpoolingTracer` instead streams each record to a JSONL file
(gzip'd when the path ends in ``.gz``), keeps only a fixed-size ring
buffer of recent records for in-process inspection, and optionally
filters by kind prefix so a spool can capture "``fds.`` plus ``sim.``
and ``meta.``" without paying for the radio firehose.

The on-disk format is one JSON object per line with the same shape
:func:`repro.sim.trace.iter_jsonl` emits (``time``/``kind``/``node``
plus the flattened detail), so ``repro trace``, ``jq``, and pandas all
read it directly; :func:`iter_spool` streams it back as
:class:`~repro.sim.trace.TraceRecord` objects.

Emission is safe under concurrency: ``emit``/``flush``/``close`` hold an
internal lock, so asyncio callbacks that hop threads (executors,
loop.call_soon_threadsafe) and the rt runtime's socket callbacks can
share one spool without interleaving half-written lines.  (Within a
single event loop the callbacks never truly race, but the lock makes the
guarantee independent of the caller's scheduling.)
"""

from __future__ import annotations

import gzip
import io
import json
import time
import threading
from collections import deque
from pathlib import Path
from typing import Deque, Iterator, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.sim.trace import TraceRecord, Tracer, record_to_dict
from repro.types import SimTime

#: Fields of the serialized record that are not ``detail`` entries.
_CORE_FIELDS = ("time", "kind", "node")


def _kind_matches(kind: str, prefixes: Sequence[str]) -> bool:
    """Segment-aware prefix match (``"fds"`` matches ``"fds.detection"``,
    not ``"fdsx"``)."""
    for prefix in prefixes:
        if kind == prefix or kind.startswith(prefix + "."):
            return True
    return False


class SpoolingTracer(Tracer):
    """Streams records to disk; holds only a bounded tail in memory."""

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        kinds: Optional[Sequence[str]] = None,
        tail: int = 1024,
        flush_every: int = 4096,
    ) -> None:
        """``kinds`` keeps only records whose kind equals, or is nested
        under, one of the given prefixes (``None`` keeps everything).
        ``tail`` bounds the in-memory ring buffer; ``flush_every`` is the
        record interval between explicit stream flushes (crash-tolerant
        spools want small values; throughput wants large ones).
        """
        if tail < 0:
            raise ConfigurationError(f"tail must be >= 0, got {tail}")
        if flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._prefixes = tuple(kinds) if kinds is not None else None
        self._tail: Deque[TraceRecord] = deque(maxlen=tail)
        self._flush_every = flush_every
        #: Records written to disk (post-filter).
        self.spooled = 0
        #: Records dropped by the kind filter.
        self.filtered = 0
        if self.path.suffix == ".gz":
            self._handle: io.TextIOBase = gzip.open(
                self.path, "wt", encoding="utf-8"
            )
        else:
            self._handle = self.path.open("w", encoding="utf-8")
        self._closed = False
        # Serializes emit/flush/close across threads: one record is one
        # intact line on disk, and the spooled counter stays exact.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def emit(self, record: TraceRecord) -> None:
        if self._prefixes is not None and not _kind_matches(
            record.kind, self._prefixes
        ):
            with self._lock:
                if self._closed:
                    raise ConfigurationError(
                        f"SpoolingTracer {self.path} is closed; "
                        f"no further records"
                    )
                self.filtered += 1
            return
        # Serialize outside the lock (pure CPU), write inside it.
        line = json.dumps(record_to_dict(record), sort_keys=True)
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    f"SpoolingTracer {self.path} is closed; no further records"
                )
            self._handle.write(line)
            self._handle.write("\n")
            self.spooled += 1
            self._tail.append(record)
            if self.spooled % self._flush_every == 0:
                self._handle.flush()

    # ------------------------------------------------------------------
    def tail_records(self) -> tuple:
        """The most recent spooled records (up to the ring size)."""
        return tuple(self._tail)

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
            finally:
                self._handle.close()

    def __enter__(self) -> "SpoolingTracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading spools back
# ----------------------------------------------------------------------
def _open_spool(path: Path) -> io.TextIOBase:
    """Open a spool for reading, sniffing gzip by magic bytes (a spool
    renamed without its ``.gz`` suffix still loads)."""
    with path.open("rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def _parse_line(
    line: str, prefixes: Optional[Sequence[str]]
) -> Optional[TraceRecord]:
    """One JSONL line -> record, or ``None`` (blank/garbage/filtered)."""
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    kind = payload.get("kind", "")
    if prefixes is not None and not _kind_matches(kind, prefixes):
        return None
    detail = {
        key: value
        for key, value in payload.items()
        if key not in _CORE_FIELDS
    }
    return TraceRecord(
        time=SimTime(payload.get("time", 0.0)),
        kind=kind,
        node=payload.get("node"),
        detail=detail,
    )


def _is_gzip(path: Path) -> bool:
    with path.open("rb") as probe:
        return probe.read(2) == b"\x1f\x8b"


def iter_spool(
    path: Union[str, Path],
    kinds: Optional[Sequence[str]] = None,
    *,
    follow: bool = False,
    poll_interval: float = 0.2,
    stop: Optional[threading.Event] = None,
    idle_marker: bool = False,
) -> Iterator[Optional[TraceRecord]]:
    """Stream a spool file back as :class:`TraceRecord` objects.

    Torn final lines (a run killed mid-write) are skipped, matching the
    campaign telemetry reader's policy: an incomplete line carries no
    completed event.

    With ``follow=True`` the iterator tails a *growing* spool instead of
    stopping at EOF: a trailing line without its newline is held back and
    re-attempted until the writer completes it (one record is one intact
    line -- :class:`SpoolingTracer` writes are lock-serialized), and the
    reader sleeps ``poll_interval`` seconds between attempts.  The loop
    runs until ``stop`` (a :class:`threading.Event`) is set; remaining
    complete lines are drained before returning.  ``idle_marker=True``
    yields ``None`` once per empty poll so a consumer (the dashboard's
    SSE endpoint) can emit keep-alives and notice dead peers.  Follow
    mode refuses gzip spools: a gzip stream is not seekable-appendable,
    so a growing ``.gz`` file cannot be tailed record-by-record.
    """
    path = Path(path)
    if not path.is_file():
        raise ConfigurationError(f"no trace spool at {path}")
    prefixes = tuple(kinds) if kinds is not None else None
    if not follow:
        with _open_spool(path) as handle:
            for line in handle:
                record = _parse_line(line, prefixes)
                if record is not None:
                    yield record
        return
    if poll_interval <= 0:
        raise ConfigurationError(
            f"poll_interval must be > 0, got {poll_interval}"
        )
    if path.suffix == ".gz" or _is_gzip(path):
        raise ConfigurationError(
            f"cannot follow gzip spool {path}: gzip streams are not "
            "seekable-appendable; spool to plain .jsonl for live tailing"
        )
    # Binary tail loop: bytes after the last newline stay buffered until
    # the writer finishes the line, so a torn trailing line is retried
    # rather than dropped.
    with path.open("rb") as handle:
        pending = b""
        while True:
            chunk = handle.read(65536)
            if chunk:
                pending += chunk
                while True:
                    newline = pending.find(b"\n")
                    if newline < 0:
                        break
                    raw, pending = pending[:newline], pending[newline + 1:]
                    record = _parse_line(
                        raw.decode("utf-8", errors="replace"), prefixes
                    )
                    if record is not None:
                        yield record
                continue
            if stop is not None and stop.is_set():
                return
            if idle_marker:
                yield None
            time.sleep(poll_interval)


def read_spool(
    path: Union[str, Path],
    kinds: Optional[Sequence[str]] = None,
) -> list:
    """Materialize a spool (small files / tests); prefer :func:`iter_spool`."""
    return list(iter_spool(path, kinds=kinds))
