"""Protocol-in-the-loop validation: the real FDS vs the Figure 5/7 math.

Runs the actual three-round protocol (real rounds, digests, peer
forwarding) on the paper's Section 5 single-cluster setup at the
measurable corner (N=50, p=0.5) and checks the observed incompleteness
rate against the closed form's 99% interval.  This is the slowest bench
(a full discrete-event run); the timing documents simulator throughput.
Results in ``benchmarks/results/protocol_validation.txt``.
"""

from repro.experiments.scenarios import (
    single_cluster_validation,
    validation_summary,
)
from repro.util.tables import render_table

EXECUTIONS = 150


def test_protocol_validation(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: single_cluster_validation(
            n=50, p=0.5, executions=EXECUTIONS, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    summary = validation_summary(result)
    write_result(
        "protocol_validation",
        render_table(
            ["metric", "measured", "analytic", "ci_low", "ci_high"],
            [
                [
                    "incompleteness rate",
                    summary["inc_rate_measured"],
                    summary["inc_rate_analytic"],
                    summary["inc_ci_low"],
                    summary["inc_ci_high"],
                ],
                [
                    "false detections (events)",
                    float(result.false_detections),
                    result.analytic_false_detection * EXECUTIONS,
                    summary["fd_ci_low"] * EXECUTIONS,
                    summary["fd_ci_high"] * EXECUTIONS,
                ],
            ],
            title="real protocol vs closed forms (N=50, p=0.5)",
        ),
    )
    low, high = result.incompleteness_interval()
    assert low <= result.analytic_incompleteness <= high
    # No lasting suspicion of operational nodes once the run quiesces.
    assert result.accuracy_violations_final <= 2
