"""FIG-2: the DCH reachability study (summarized in Section 4.2).

The paper reports the result of a model-based analysis it had no space to
print: "unless the node population density is low and the DCH's distance
from the original CH is big, with high probability a DCH will be able to
hear from an 'out-of-range' cluster member through the round of digest
diffusion."  This bench regenerates that study as a table of
P(DCH unaware of an out-of-range member) over (N, dch_distance) at
p = 0.1, written to ``benchmarks/results/fig2_dch_reachability.txt``.
"""

from repro.analysis.reachability import dch_reachability_failure
from repro.util.tables import render_table

N_VALUES = (25, 50, 75, 100)
DISTANCES = (20.0, 40.0, 60.0, 80.0, 95.0)
P = 0.1


def sweep():
    rows = []
    for d in DISTANCES:
        row = [d]
        for n in N_VALUES:
            row.append(dch_reachability_failure(n, P, dch_distance=d,
                                                resolution=400))
        rows.append(row)
    return rows


def test_dch_reachability_study(benchmark, write_result):
    rows = benchmark(sweep)
    table = render_table(
        ["dch_distance", *(f"N={n}" for n in N_VALUES)],
        rows,
        title=f"P(DCH unaware of out-of-range member), p={P}",
    )
    write_result("fig2_dch_reachability", table)

    by_distance = {row[0]: row[1:] for row in rows}
    # Dense clusters: unaware-probability negligible unless d is large.
    assert by_distance[40.0][N_VALUES.index(100) ] < 1e-6
    assert by_distance[40.0][N_VALUES.index(50)] < 1e-2
    # The paper's caveat: low density AND big distance is the bad corner.
    assert by_distance[95.0][N_VALUES.index(25)] > 0.05
    # Monotone: more density always helps, more distance always hurts.
    for row in rows:
        values = row[1:]
        assert all(a > b for a, b in zip(values, values[1:]))
