"""Benches for the Section 6 extensions: power management, aggregation,
and the iid-loss robustness probe.

- ``ablation_sleep``: false detections and energy under sleep/wakeup, with
  the naive FDS vs the announce-and-excuse mitigation the paper proposes.
- ``aggregation``: in-network AVG sharing the FDS messages -- accuracy of
  every clusterhead's global view and the extra-message cost.
- ``loss_models``: the Figure 5/7 protocol behaviour when the iid Bernoulli
  assumption is replaced by bursty Gilbert-Elliott loss with the *same*
  mean rate -- probing the analysis's core modeling assumption.
"""

import statistics

import numpy as np

from repro.aggregation.combiners import AggregateKind
from repro.aggregation.service import AggregationConfig, attach_aggregation
from repro.cluster.geometric import build_clusters
from repro.energy.model import EnergyConfig, EnergyModel
from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.fds.service import install_fds
from repro.metrics.properties import evaluate_properties
from repro.power.manager import install_power_management
from repro.power.schedule import DutyCycleSchedule
from repro.sim.loss import GilbertElliottLoss
from repro.sim.network import NetworkConfig, build_network
from repro.sim.trace import RecordingTracer
from repro.topology.generators import corridor_field
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import cluster_disk_placement
from repro.util.tables import render_table


def _sleep_run(sleep_aware: bool, seed: int = 9):
    rng = np.random.default_rng(seed)
    placement = cluster_disk_placement(24, 100.0, rng)
    layout = build_clusters(UnitDiskGraph(placement, 100.0))
    tracer = RecordingTracer()
    network = build_network(
        placement, NetworkConfig(loss_probability=0.05, seed=4), tracer=tracer
    )
    cfg = FdsConfig(phi=5.0, thop=0.5, sleep_aware=sleep_aware)
    energy = EnergyModel(EnergyConfig(harvest_rate=0.0))
    deployment = install_fds(network, layout, cfg, energy=energy)
    install_power_management(
        deployment,
        DutyCycleSchedule(awake=2, asleep_count=1),
        announce_sleep=sleep_aware,
    )
    FailureInjector(network, cfg).crash_before_execution(7, 3)
    deployment.run_executions(9)
    report = evaluate_properties(deployment)
    return {
        "mode": "announce+excuse" if sleep_aware else "naive-sleep",
        "detections": float(tracer.count(ev.DETECTION)),
        "false_suspicion_pairs": float(len(report.accuracy_violations)),
        "crash_completeness": report.completeness.get(7, 0.0),
        "radio_ops": energy.totals()["rx_total"] + energy.totals()["tx_total"],
    }


def test_ablation_sleep(benchmark, write_result):
    rows = benchmark.pedantic(
        lambda: [_sleep_run(True), _sleep_run(False)], rounds=1, iterations=1
    )
    keys = ["mode", "detections", "false_suspicion_pairs",
            "crash_completeness", "radio_ops"]
    write_result(
        "ablation_sleep",
        render_table(keys, [[r[k] for k in keys] for r in rows],
                     title="sleep/wakeup: naive vs announced (1 real crash)"),
    )
    aware, naive = rows
    assert aware["detections"] <= 3  # essentially just the real crash
    assert naive["detections"] > 10 * aware["detections"]
    assert aware["crash_completeness"] == 1.0


def test_aggregation_accuracy_and_cost(benchmark, write_result):
    def run():
        rng = np.random.default_rng(5)
        placement = corridor_field(3, 25, 100.0, rng)
        layout = build_clusters(UnitDiskGraph(placement, 100.0))
        network = build_network(
            placement, NetworkConfig(loss_probability=0.1, seed=2)
        )
        cfg = FdsConfig(phi=10.0, thop=0.5)
        deployment = install_fds(network, layout, cfg)
        values = {int(n): 20.0 + int(n) % 7 for n in network.nodes}
        services = attach_aggregation(
            deployment, lambda nid, k: values[int(nid)],
            AggregationConfig(kind=AggregateKind.AVG),
        )
        injector = FailureInjector(network, cfg)
        victim = sorted(
            layout.clusters[layout.heads[1]].ordinary_members
        )[0]
        injector.crash_before_execution(victim, 2)
        deployment.run_executions(6)
        truth = statistics.mean(
            values[int(n)] for n in network.operational_ids()
        )
        rows = []
        for head in layout.heads:
            service = services[head]
            rows.append([
                f"CH {head}",
                service.current_value(),
                truth,
                float(service.contributor_count()),
                float(len(network.operational_ids())),
            ])
        extra = sum(s.shares_sent for s in services.values())
        return rows, extra, truth, services, layout, network

    rows, extra, truth, services, layout, network = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    write_result(
        "aggregation",
        render_table(
            ["head", "aggregate", "truth", "contributors", "operational"],
            rows,
            title=f"in-network AVG over the FDS (extra messages: {extra})",
        ),
    )
    for head in layout.heads:
        assert services[head].current_value() == truth
    # Message sharing: the aggregation layer's own traffic is tiny.
    assert extra < len(network.nodes)


def test_loss_model_robustness(benchmark, write_result):
    """The protocol under bursty loss at the same mean rate as iid."""

    def run(loss_model, label, seed):
        rng = np.random.default_rng(11)
        placement = cluster_disk_placement(39, 100.0, rng)
        layout = build_clusters(UnitDiskGraph(placement, 100.0))
        tracer = RecordingTracer()
        network = build_network(
            placement,
            NetworkConfig(loss_probability=0.2, seed=seed),
            loss_model=loss_model,
            tracer=tracer,
        )
        cfg = FdsConfig(phi=5.0, thop=0.5)
        deployment = install_fds(network, layout, cfg)
        FailureInjector(network, cfg).crash_before_execution(11, 2)
        deployment.run_executions(10)
        report = evaluate_properties(deployment)
        return {
            "loss_model": label,
            "false_detections": float(
                sum(1 for r in tracer.iter_kind(ev.DETECTION)
                    if r.detail["target"] != 11)
            ),
            "crash_completeness": report.completeness.get(11, 0.0),
            "residual_violations": float(len(report.accuracy_violations)),
        }

    def run_all():
        bursty = GilbertElliottLoss(p_good=0.05, p_bad=0.8, p_gb=0.05, p_bg=0.2)
        rows = [run(None, f"iid p=0.2", 3)]
        rows.append(
            run(bursty, f"gilbert-elliott mean={bursty.stationary_loss_rate:.2f}", 3)
        )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    keys = ["loss_model", "false_detections", "crash_completeness",
            "residual_violations"]
    write_result(
        "loss_models",
        render_table(keys, [[r[k] for k in keys] for r in rows],
                     title="iid vs bursty loss at equal mean rate"),
    )
    for r in rows:
        assert r["crash_completeness"] == 1.0
