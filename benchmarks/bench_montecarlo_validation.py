"""Monte Carlo validation of the three closed-form measures.

Each benchmark samples the measure's conditional event at the paper's
high-loss corner (where the probabilities are measurable) and asserts the
closed form lies inside the 99% Wilson interval.  Results in
``benchmarks/results/mc_validation.txt``.

The estimates run as **campaigns** through the content-addressed result
store (:mod:`repro.campaign`): the first run computes and caches each
seeded chunk; any re-run replays the chunks as cache hits -- bit-identical
estimates, zero simulations -- while still emitting one telemetry event
per chunk.  The store lives under ``benchmarks/results/store`` (override
with ``REPRO_STORE``).
"""

import os
import pathlib

from repro.analysis.ch_false_detection import p_false_detection_on_ch
from repro.analysis.false_detection import p_false_detection
from repro.analysis.incompleteness import p_incompleteness
from repro.campaign import ResultStore, mc_plan, run_campaign
from repro.util.tables import render_table

TRIALS = 120_000
CHUNKS = 8
STORE_DIR = pathlib.Path(
    os.environ.get("REPRO_STORE", pathlib.Path(__file__).parent / "results" / "store")
)


def run_mc_campaign(estimator: str, n: int, p: float, seed: int):
    """One cached, chunk-journaled MC estimate; returns (estimate, outcome)."""
    store = ResultStore(STORE_DIR)
    plan = mc_plan(estimator, n, p, TRIALS, seed=seed, chunks=CHUNKS)
    outcome = run_campaign(plan, store)
    assert outcome.complete, f"campaign {outcome.campaign_id}: {outcome.status}"
    return outcome.merged, outcome


def _write_row(write_result, name, label, analytic, estimate, outcome):
    write_result(
        name,
        render_table(
            ["measure", "analytic", "mc_estimate", "ci_low", "ci_high",
             "cache_hits", "executed"],
            [[label, analytic, estimate.estimate, *estimate.interval(),
              outcome.cache_hits, outcome.executed]],
        ),
    )


def test_mc_false_detection(benchmark, write_result):
    estimate, outcome = benchmark.pedantic(
        lambda: run_mc_campaign("false_detection", 50, 0.5, seed=11),
        rounds=1, iterations=1,
    )
    analytic = p_false_detection(50, 0.5)
    assert estimate.contains(analytic)
    _write_row(write_result, "mc_false_detection",
               "P^(FD) N=50 p=0.5", analytic, estimate, outcome)


def test_mc_incompleteness(benchmark, write_result):
    estimate, outcome = benchmark.pedantic(
        lambda: run_mc_campaign("incompleteness", 50, 0.5, seed=12),
        rounds=1, iterations=1,
    )
    analytic = p_incompleteness(50, 0.5)
    assert estimate.contains(analytic)
    _write_row(write_result, "mc_incompleteness",
               "P^(Inc) N=50 p=0.5", analytic, estimate, outcome)


def test_mc_ch_false_detection(benchmark, write_result):
    # The conditional event is measurable at small N (see module docs of
    # the estimator); N=10 keeps (p(2-p))^(N-2) around 4e-2.
    estimate, outcome = benchmark.pedantic(
        lambda: run_mc_campaign("false_detection_on_ch", 10, 0.5, seed=13),
        rounds=1, iterations=1,
    )
    analytic = p_false_detection_on_ch(10, 0.5)
    assert estimate.contains(analytic)
    _write_row(write_result, "mc_ch_false_detection",
               "P(FDoCH) N=10 p=0.5", analytic, estimate, outcome)
