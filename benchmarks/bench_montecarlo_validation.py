"""Monte Carlo validation of the three closed-form measures.

Each benchmark samples the measure's conditional event at the paper's
high-loss corner (where the probabilities are measurable) and asserts the
closed form lies inside the 99% Wilson interval.  The timing shows the
vectorized estimators' throughput.  Results in
``benchmarks/results/mc_validation.txt``.
"""

import numpy as np

from repro.analysis.ch_false_detection import p_false_detection_on_ch
from repro.analysis.false_detection import p_false_detection
from repro.analysis.incompleteness import p_incompleteness
from repro.analysis.montecarlo import (
    mc_false_detection,
    mc_false_detection_on_ch,
    mc_incompleteness,
)
from repro.util.tables import render_table

TRIALS = 120_000


def test_mc_false_detection(benchmark, write_result):
    rng = np.random.default_rng(11)
    estimate = benchmark.pedantic(
        lambda: mc_false_detection(50, 0.5, TRIALS, rng),
        rounds=3, iterations=1,
    )
    analytic = p_false_detection(50, 0.5)
    assert estimate.contains(analytic)
    write_result(
        "mc_false_detection",
        render_table(
            ["measure", "analytic", "mc_estimate", "ci_low", "ci_high"],
            [["P^(FD) N=50 p=0.5", analytic, estimate.estimate,
              *estimate.interval()]],
        ),
    )


def test_mc_incompleteness(benchmark, write_result):
    rng = np.random.default_rng(12)
    estimate = benchmark.pedantic(
        lambda: mc_incompleteness(50, 0.5, TRIALS, rng),
        rounds=3, iterations=1,
    )
    analytic = p_incompleteness(50, 0.5)
    assert estimate.contains(analytic)
    write_result(
        "mc_incompleteness",
        render_table(
            ["measure", "analytic", "mc_estimate", "ci_low", "ci_high"],
            [["P^(Inc) N=50 p=0.5", analytic, estimate.estimate,
              *estimate.interval()]],
        ),
    )


def test_mc_ch_false_detection(benchmark, write_result):
    # The conditional event is measurable at small N (see module docs of
    # the estimator); N=10 keeps (p(2-p))^(N-2) around 4e-2.
    rng = np.random.default_rng(13)
    estimate = benchmark.pedantic(
        lambda: mc_false_detection_on_ch(10, 0.5, TRIALS, rng),
        rounds=3, iterations=1,
    )
    analytic = p_false_detection_on_ch(10, 0.5)
    assert estimate.contains(analytic)
    write_result(
        "mc_ch_false_detection",
        render_table(
            ["measure", "analytic", "mc_estimate", "ci_low", "ci_high"],
            [["P(FDoCH) N=10 p=0.5", analytic, estimate.estimate,
              *estimate.interval()]],
        ),
    )
