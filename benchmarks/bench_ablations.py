"""Ablation benches: what each of the paper's mechanisms buys.

Each bench toggles one mechanism on the real protocol, times the runs, and
writes the comparison table to ``benchmarks/results/ablation_*.txt``:

- digest round R-2          -> false-detection rate (accuracy)
- peer forwarding           -> missed-update rate (completeness)
- DCH takeover              -> cluster survival of a CH crash
- BGW standby ladder        -> cross-boundary delivery at high loss
- implicit acknowledgments  -> delivery vs forwarding cost
"""

from repro.experiments.ablations import (
    ablation_bgw_count,
    ablation_dch,
    ablation_digest,
    ablation_implicit_ack,
    ablation_peer_forwarding,
)
from repro.experiments.reporting import render_ablation


def test_ablation_digest(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: ablation_digest(n=40, p=0.3, executions=40, seed=0),
        rounds=1, iterations=1,
    )
    write_result("ablation_digest", render_ablation(result))
    with_rate = result.metric("with-digests", "rate_per_member_execution")
    without_rate = result.metric("without-digests", "rate_per_member_execution")
    assert with_rate < without_rate / 10


def test_ablation_peer_forwarding(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: ablation_peer_forwarding(n=40, p=0.3, executions=40, seed=0),
        rounds=1, iterations=1,
    )
    write_result("ablation_peer_forwarding", render_ablation(result))
    with_rate = result.metric(
        "with-peer-forwarding", "rate_per_member_execution"
    )
    without_rate = result.metric(
        "without-peer-forwarding", "rate_per_member_execution"
    )
    assert with_rate < without_rate / 5


def test_ablation_dch(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: ablation_dch(n=30, p=0.15, executions=6, seed=0),
        rounds=1, iterations=1,
    )
    write_result("ablation_dch", render_ablation(result))
    assert result.metric("with-dch", "served_in_last_execution") > 0.9
    assert result.metric("without-dch", "served_in_last_execution") == 0.0


def test_ablation_bgw_count(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: ablation_bgw_count(p=0.45, trials=8, seed=0),
        rounds=1, iterations=1,
    )
    write_result("ablation_bgw", render_ablation(result))
    none = result.metric("backups=0", "mean_cross_boundary_knowledge")
    two = result.metric("backups=2", "mean_cross_boundary_knowledge")
    assert two >= none


def test_ablation_implicit_ack(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: ablation_implicit_ack(p=0.45, trials=8, seed=0),
        rounds=1, iterations=1,
    )
    write_result("ablation_implicit_ack", render_ablation(result))
    with_ack = result.metric(
        "with-implicit-ack", "mean_cross_boundary_knowledge"
    )
    without_ack = result.metric(
        "without-implicit-ack", "mean_cross_boundary_knowledge"
    )
    assert with_ack >= without_ack
