#!/usr/bin/env python
"""Hot-path microbenchmarks: radio fan-out, MC throughput, parallel repeat.

Emits a machine-readable ``benchmarks/results/BENCH_hotpaths.json`` so the
performance trajectory is trackable across PRs.  Three benches:

- **transmit_fanout** -- ``RadioMedium.transmit`` into a dense N=100
  cluster at p=0.2, vectorized hot path vs. the scalar reference loop
  (``vectorized=False``).  Both paths are bit-identical by construction
  (asserted via the medium counters), so the speedup is pure overhead
  removal.
- **mc_throughput** -- chunked Monte Carlo false-detection trials/second,
  serial and across the process pool.
- **repeat_scenario** -- wall clock of a multi-seed scenario replication
  for 1/2/4 workers, with scaling efficiency relative to serial.
  Efficiency is computed against the *effective* worker count
  (requested, capped at CPUs and tasks -- see
  :func:`repro.util.parallel.effective_workers`), since that is the
  parallelism the fabric actually deploys.
- **array_round** -- per-execution cost of the round-level numpy engine
  (``engine="array"``) at N=1k/10k/100k, with the event engine timed at
  the smallest size for the speedup pair.  The recorded
  ``speedup_floor`` is the CI regression gate: a run whose measured
  speedup falls below it fails the workflow.
- **array_round_gilbert** -- the same event/array pair at the smallest
  size, but under Gilbert-Elliott loss with the energy ledger on.  The
  stateful chains and batched charges are the costliest array paths, so
  they carry their own (lower) ``speedup_floor`` gate.
- **formation_array_round** -- the six-round distributed formation
  protocol, event engine vs ``run_array_formation`` on the same N~972
  lattice field under Bernoulli loss, plus an array-only N=10^5 point in
  full runs.  Carries its own ``speedup_floor`` CI gate.
- **obs_overhead** -- an end-to-end scenario with observability off
  (NULL_PROFILER + NullTracer, the default) vs. fully on (PhaseProfiler
  + SpoolingTracer to gzip).  The disabled ratio is the instrumentation
  tax every ordinary run pays; the budget is <= 2%.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py          # full
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick  # CI smoke

Numbers are machine-dependent; ``meta.cpu_count`` is recorded so scaling
efficiency on single-core boxes is interpretable (a pool cannot beat
serial with one CPU).
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import pathlib
import sys
import time

import numpy as np

from repro.analysis.montecarlo import mc_chunked, mc_false_detection
from repro.experiments.repeat import repeat_scenario
from repro.experiments.runner import ScenarioConfig
from repro.sim.engine import Simulator
from repro.sim.loss import BernoulliLoss
from repro.sim.medium import RadioMedium
from repro.util.geometry import Vec2
from repro.util.parallel import effective_workers

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_OUTPUT = RESULTS_DIR / "BENCH_hotpaths.json"

WORKER_COUNTS = (1, 2, 4)

#: CI regression gate: the array engine must stay at least this many
#: times faster than the event engine per round at the N~1k pair size.
#: Measured ~260x on the reference container; the floor is deliberately
#: far below that so only a real regression (not machine noise) trips it.
ARRAY_ROUND_SPEEDUP_FLOOR = 25.0

#: Same gate for the stateful configuration: Gilbert-Elliott loss chains
#: plus the per-node energy ledger.  The chains force sequential
#: attempt-ladder draws and the ledger adds batched charge passes, both
#: of which eat into the vectorization win; measured ~300x on the
#: reference container, floored conservatively below the plain-loss gate.
ARRAY_ROUND_GILBERT_SPEEDUP_FLOOR = 20.0

#: Gate for the vectorized six-round formation protocol: event-engine
#: ``run_formation`` vs ``run_array_formation`` on the same N~972 field.
#: Measured ~90x on the reference container; floored at the issue's
#: acceptance bound.
FORMATION_ARRAY_SPEEDUP_FLOOR = 20.0


def _dense_cluster_positions(n: int, radius: float, seed: int) -> list[Vec2]:
    """``n`` nodes uniform in a disk of ``radius/2`` -- all pairwise in range."""
    rng = np.random.default_rng(seed)
    r = (radius / 2.0) * np.sqrt(rng.uniform(size=n))
    theta = rng.uniform(0.0, 2.0 * math.pi, size=n)
    return [Vec2(float(x), float(y)) for x, y in zip(r * np.cos(theta), r * np.sin(theta))]


def _build_medium(positions, p: float, seed: int, vectorized: bool) -> RadioMedium:
    sim = Simulator()
    medium = RadioMedium(
        sim,
        transmission_range=100.0,
        loss_model=BernoulliLoss(p),
        rng=np.random.default_rng(seed),
        vectorized=vectorized,
    )
    for i, pos in enumerate(positions):
        medium.register(i, pos, lambda env: None)
    return medium


def bench_transmit_fanout(n: int, p: float, transmits: int, seed: int = 7) -> dict:
    """Time ``transmit`` alone: bursts on the clock, queue drain off it.

    Draining between bursts keeps the event heap at a realistic size
    (in a real run deliveries fire continuously), and GC is held during
    the timed sections so collection pauses don't land on either path
    unevenly.
    """
    positions = _dense_cluster_positions(n, radius=100.0, seed=seed)
    burst = 25
    bursts = max(1, transmits // burst)
    timings: dict[str, float] = {}
    stats: dict[str, dict[str, int]] = {}
    for label, vectorized in (("vectorized", True), ("scalar", False)):
        medium = _build_medium(positions, p, seed, vectorized)
        medium.transmit(0, "warmup")  # build neighbor + array caches
        medium.sim.run()
        elapsed = 0.0
        gc.disable()
        try:
            for _ in range(bursts):
                start = time.perf_counter()
                for i in range(burst):
                    medium.transmit(i % n, "payload")
                elapsed += time.perf_counter() - start
                medium.sim.run()  # drain deliveries off-clock
        finally:
            gc.enable()
        timings[label] = elapsed
        stats[label] = medium.message_stats()
    transmits = bursts * burst
    if stats["vectorized"] != stats["scalar"]:  # bit-identity sanity check
        raise AssertionError(
            f"paths diverged: {stats['vectorized']} != {stats['scalar']}"
        )
    speedup = timings["scalar"] / timings["vectorized"]
    return {
        "n": n,
        "p": p,
        "transmits": transmits,
        "scalar_s": timings["scalar"],
        "vectorized_s": timings["vectorized"],
        "scalar_us_per_transmit": 1e6 * timings["scalar"] / transmits,
        "vectorized_us_per_transmit": 1e6 * timings["vectorized"] / transmits,
        "speedup": speedup,
        "paths_bit_identical": True,
    }


def bench_mc_throughput(trials: int, seed: int = 11) -> dict:
    per_workers: dict[str, dict] = {}
    reference = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        estimate = mc_chunked(
            mc_false_detection, 100, 0.2, trials, seed=seed, workers=workers
        )
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = estimate
        per_workers[str(workers)] = {
            "wall_s": elapsed,
            "trials_per_s": trials / elapsed,
            "estimate": estimate.estimate,
            "bit_identical_to_serial": estimate == reference,
        }
    return {"trials": trials, "n": 100, "p": 0.2, "workers": per_workers}


def bench_array_round(quick: bool) -> dict:
    """Event vs array-engine µs per execution round across field sizes.

    The event engine is timed only at the smallest size (it is the
    reference, and already costs ~10 s there); larger sizes record the
    array engine alone, which is the whole point of its existence.
    """
    from dataclasses import replace

    from repro.experiments.runner import run_scenario
    from repro.sim.trace import NullTracer

    sizes = ((9, 110), (36, 277)) if quick else ((9, 110), (36, 277), (3448, 28))
    executions = 3
    per_size: dict[str, dict] = {}
    pair_speedup = None

    def timed(config) -> tuple[float, object]:
        gc.disable()
        try:
            start = time.perf_counter()
            result = run_scenario(config, tracer=NullTracer())
            return time.perf_counter() - start, result
        finally:
            gc.enable()

    for clusters, members in sizes:
        n = clusters * (members + 1)
        config = ScenarioConfig(
            cluster_count=clusters,
            members_per_cluster=members,
            loss_probability=0.1,
            crash_count=4,
            executions=executions,
            seed=1,
            engine="array",
        )
        array_s, result = timed(config)
        row = {
            "n": n,
            "clusters": clusters,
            "members_per_cluster": members,
            "executions": executions,
            "array_s": array_s,
            "array_us_per_round": 1e6 * array_s / executions,
            "mean_completeness": result.properties.mean_completeness,
            "event_s": None,
            "event_us_per_round": None,
            "speedup": None,
        }
        if (clusters, members) == sizes[0]:
            event_s, event_result = timed(replace(config, engine="event"))
            row["event_s"] = event_s
            row["event_us_per_round"] = 1e6 * event_s / executions
            row["speedup"] = event_s / array_s
            row["verdicts_agree"] = (
                event_result.properties.mean_completeness
                == result.properties.mean_completeness
            )
            pair_speedup = row["speedup"]
        per_size[str(n)] = row

    return {
        "executions": executions,
        "sizes": per_size,
        "speedup": pair_speedup,
        "speedup_floor": ARRAY_ROUND_SPEEDUP_FLOOR,
        "meets_floor": (
            pair_speedup is not None
            and pair_speedup >= ARRAY_ROUND_SPEEDUP_FLOOR
        ),
    }


def bench_array_round_gilbert(quick: bool) -> dict:
    """Event vs array engine under Gilbert-Elliott loss + energy ledger.

    The stateful configuration exercises the per-directed-link Markov
    chains (sequential attempt-ladder draws) and the batched per-node
    energy charges -- the two paths the plain ``bench_array_round``
    bernoulli run never touches.  One pair size is enough: the point of
    this bench is the speedup gate, not a scaling curve.
    """
    from dataclasses import replace

    from repro.experiments.runner import run_scenario
    from repro.sim.trace import NullTracer

    clusters, members = 9, 110
    executions = 3
    config = ScenarioConfig(
        cluster_count=clusters,
        members_per_cluster=members,
        crash_count=4,
        executions=executions,
        seed=1,
        engine="array",
        loss_kind="gilbert",
        loss_params=(
            ("p_good", 0.02),
            ("p_bad", 0.8),
            ("p_gb", 0.05),
            ("p_bg", 0.3),
        ),
        track_energy=True,
    )

    def timed(cfg) -> tuple[float, object]:
        gc.disable()
        try:
            start = time.perf_counter()
            result = run_scenario(cfg, tracer=NullTracer())
            return time.perf_counter() - start, result
        finally:
            gc.enable()

    array_s, array_result = timed(config)
    event_s, _event_result = timed(replace(config, engine="event"))
    speedup = event_s / array_s
    energy = array_result.energy
    return {
        "n": clusters * (members + 1),
        "clusters": clusters,
        "members_per_cluster": members,
        "executions": executions,
        "array_s": array_s,
        "array_us_per_round": 1e6 * array_s / executions,
        "event_s": event_s,
        "event_us_per_round": 1e6 * event_s / executions,
        "energy_spread": energy.spread() if energy is not None else None,
        "speedup": speedup,
        "speedup_floor": ARRAY_ROUND_GILBERT_SPEEDUP_FLOOR,
        "meets_floor": speedup >= ARRAY_ROUND_GILBERT_SPEEDUP_FLOOR,
    }


def bench_formation_array_round(quick: bool) -> dict:
    """Event vs array engine running the six-round formation protocol.

    Both sides form the same lattice field under Bernoulli p=0.1 loss:
    the event engine spools ~1.4M delivery events through the simulator,
    the array engine runs the batched per-round edge programs.  The pair
    is timed at N~972 (the issue's acceptance size); the full run adds an
    array-only N=10^5 point to show formation is no longer the scaling
    bottleneck (the FDS phase already ran at 10^6 in earlier PRs).
    """
    from repro.cluster.formation import FormationConfig, run_formation
    from repro.sim.array_engine.formation import run_array_formation
    from repro.sim.array_engine.layout import lattice_positions
    from repro.sim.array_engine.loss import ArrayLossDraw
    from repro.sim.loss import build_loss_model
    from repro.sim.network import NetworkConfig, build_network
    from repro.types import NodeId

    radius = 100.0
    loss_p = 0.1
    config = FormationConfig()
    sizes = ((12, 80),) if quick else ((12, 80), (2000, 49))
    per_size: dict[str, dict] = {}
    pair_speedup = None

    for clusters, members in sizes:
        n = clusters * (members + 1)
        xs, ys = lattice_positions(
            cluster_count=clusters, members_per_cluster=members,
            radius=radius, rng=np.random.default_rng(7),
        )
        loss = ArrayLossDraw(
            "bernoulli", (("p", loss_p),), loss_probability=loss_p,
            transmission_range=radius, rng=np.random.default_rng(1),
        )
        gc.disable()
        try:
            start = time.perf_counter()
            outcome = run_array_formation(
                xs, ys, radius, config, loss, np.random.default_rng(2)
            )
            array_s = time.perf_counter() - start
        finally:
            gc.enable()
        row = {
            "n": n,
            "clusters": clusters,
            "members_per_cluster": members,
            "array_s": array_s,
            "array_heads": int(outcome.head_ids().size),
            "event_s": None,
            "speedup": None,
        }
        if (clusters, members) == sizes[0]:
            positions = {
                NodeId(i): Vec2(float(x), float(y))
                for i, (x, y) in enumerate(zip(xs, ys))
            }
            gc.disable()
            try:
                start = time.perf_counter()
                network = build_network(
                    positions,
                    NetworkConfig(
                        transmission_range=radius, loss_probability=loss_p,
                        seed=0, vectorized=True,
                    ),
                    loss_model=build_loss_model(
                        "bernoulli", (("p", loss_p),)
                    ),
                )
                event_layout = run_formation(network, config)
                event_s = time.perf_counter() - start
            finally:
                gc.enable()
            row["event_s"] = event_s
            row["event_heads"] = len(event_layout.clusters)
            row["speedup"] = event_s / array_s
            pair_speedup = row["speedup"]
        per_size[str(n)] = row

    return {
        "loss_p": loss_p,
        "iterations": config.iterations,
        "sizes": per_size,
        "speedup": pair_speedup,
        "speedup_floor": FORMATION_ARRAY_SPEEDUP_FLOOR,
        "meets_floor": (
            pair_speedup is not None
            and pair_speedup >= FORMATION_ARRAY_SPEEDUP_FLOOR
        ),
    }


def bench_repeat_scaling(seeds: int, quick: bool) -> dict:
    config = ScenarioConfig(
        cluster_count=2,
        members_per_cluster=10 if quick else 20,
        loss_probability=0.1,
        crash_count=1,
        executions=3 if quick else 5,
    )
    seed_list = list(range(1, seeds + 1))
    per_workers: dict[str, dict] = {}
    serial_wall = None
    reference = None
    for workers in WORKER_COUNTS:
        effective = effective_workers(workers, len(seed_list))
        start = time.perf_counter()
        result = repeat_scenario(config, seed_list, workers=workers)
        elapsed = time.perf_counter() - start
        if serial_wall is None:
            serial_wall = elapsed
            reference = result.metrics
        per_workers[str(workers)] = {
            "wall_s": elapsed,
            "effective_workers": effective,
            "speedup_vs_serial": serial_wall / elapsed,
            # Efficiency against the parallelism the fabric actually
            # deploys: over-asking (4 workers on 1 CPU) degrades to the
            # effective width instead of losing to pool overhead.
            "scaling_efficiency": serial_wall / elapsed / effective,
            "bit_identical_to_serial": result.metrics == reference,
        }
    return {
        "seeds": seeds,
        "scenario": {
            "cluster_count": config.cluster_count,
            "members_per_cluster": config.members_per_cluster,
            "executions": config.executions,
        },
        "workers": per_workers,
    }


def bench_obs_overhead(quick: bool) -> dict:
    """End-to-end scenario cost: observability off vs. fully on.

    "Off" is the default every experiment pays (NULL_PROFILER gates,
    NullTracer): its wall clock tracks the instrumentation tax of the
    disabled branches.  "On" attaches the phase profiler and spools the
    whole trace to gzip'd JSONL -- the price of a fully observed run.
    Best-of-N wall clocks so one scheduler hiccup doesn't skew a ratio.
    """
    import tempfile

    from repro.experiments.runner import run_scenario
    from repro.obs.profiler import PhaseProfiler
    from repro.obs.spool import SpoolingTracer
    from repro.sim.trace import NullTracer

    config = ScenarioConfig(
        cluster_count=3,
        members_per_cluster=10 if quick else 20,
        loss_probability=0.1,
        crash_count=2,
        executions=3 if quick else 5,
        seed=23,
    )
    repeats = 2 if quick else 3
    run_scenario(config, tracer=NullTracer())  # warm caches off-clock

    def best_of(thunk) -> float:
        best = math.inf
        for _ in range(repeats):
            gc.disable()
            try:
                start = time.perf_counter()
                thunk()
                best = min(best, time.perf_counter() - start)
            finally:
                gc.enable()
        return best

    disabled_s = best_of(lambda: run_scenario(config, tracer=NullTracer()))

    spool_records = 0
    phases = 0

    def observed() -> None:
        nonlocal spool_records, phases
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "bench.jsonl.gz"
            with SpoolingTracer(path) as tracer:
                profiler = PhaseProfiler()
                run_scenario(config, tracer=tracer, profiler=profiler)
            spool_records = tracer.spooled
            phases = len(profiler.seconds)

    enabled_s = best_of(observed)
    return {
        "scenario": {
            "cluster_count": config.cluster_count,
            "members_per_cluster": config.members_per_cluster,
            "executions": config.executions,
        },
        "repeats": repeats,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_over_disabled": enabled_s / disabled_s,
        "spool_records": spool_records,
        "profiled_phases": phases,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON output path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    transmits = 300 if args.quick else 2000
    trials = 50_000 if args.quick else 400_000
    seeds = 4 if args.quick else 8

    print(f"transmit fan-out (N=100, p=0.2, {transmits} transmits) ...")
    fanout = bench_transmit_fanout(n=100, p=0.2, transmits=transmits)
    print(
        f"  scalar {fanout['scalar_us_per_transmit']:.1f} us/tx, "
        f"vectorized {fanout['vectorized_us_per_transmit']:.1f} us/tx, "
        f"speedup {fanout['speedup']:.2f}x"
    )

    print(f"MC throughput ({trials} trials) ...")
    mc = bench_mc_throughput(trials)
    for w, row in mc["workers"].items():
        print(f"  workers={w}: {row['trials_per_s']:.0f} trials/s")

    print(f"repeat_scenario scaling ({seeds} seeds) ...")
    repeat = bench_repeat_scaling(seeds, args.quick)
    for w, row in repeat["workers"].items():
        print(
            f"  workers={w} (effective {row['effective_workers']}): "
            f"{row['wall_s']:.2f} s "
            f"(efficiency {row['scaling_efficiency']:.2f})"
        )

    print("array engine rounds (event vs array engine) ...")
    array_round = bench_array_round(args.quick)
    for n, row in array_round["sizes"].items():
        line = (
            f"  N={n}: array {row['array_us_per_round']:.0f} us/round"
        )
        if row["event_us_per_round"] is not None:
            line += (
                f", event {row['event_us_per_round']:.0f} us/round "
                f"(speedup {row['speedup']:.0f}x)"
            )
        print(line)
    if not array_round["meets_floor"]:
        print(
            f"  WARNING: speedup {array_round['speedup']} below floor "
            f"{array_round['speedup_floor']}"
        )

    print("array engine rounds, gilbert loss + energy ledger ...")
    array_gilbert = bench_array_round_gilbert(args.quick)
    print(
        f"  N={array_gilbert['n']}: array "
        f"{array_gilbert['array_us_per_round']:.0f} us/round, event "
        f"{array_gilbert['event_us_per_round']:.0f} us/round "
        f"(speedup {array_gilbert['speedup']:.0f}x)"
    )
    if not array_gilbert["meets_floor"]:
        print(
            f"  WARNING: gilbert speedup {array_gilbert['speedup']} below "
            f"floor {array_gilbert['speedup_floor']}"
        )

    print("distributed formation (event vs array engine) ...")
    formation = bench_formation_array_round(args.quick)
    for n, row in formation["sizes"].items():
        line = f"  N={n}: array {row['array_s'] * 1e3:.1f} ms"
        if row["event_s"] is not None:
            line += (
                f", event {row['event_s']:.2f} s "
                f"(speedup {row['speedup']:.0f}x)"
            )
        print(line)
    if not formation["meets_floor"]:
        print(
            f"  WARNING: formation speedup {formation['speedup']} below "
            f"floor {formation['speedup_floor']}"
        )

    print("observability overhead (off vs. profiler + gzip spool) ...")
    obs = bench_obs_overhead(args.quick)
    print(
        f"  disabled {obs['disabled_s']:.3f} s, enabled {obs['enabled_s']:.3f} s "
        f"({obs['enabled_over_disabled']:.2f}x, "
        f"{obs['spool_records']} records spooled)"
    )

    payload = {
        "schema": "bench_hotpaths/v2",
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "quick": args.quick,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "benchmarks": {
            "transmit_fanout": fanout,
            "mc_throughput": mc,
            "repeat_scenario": repeat,
            "array_round": array_round,
            "array_round_gilbert": array_gilbert,
            "formation_array_round": formation,
            "obs_overhead": obs,
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
