"""Scalability bench: FDS cost as the field grows.

The paper's scalability argument: per-node FDS cost is local (O(cluster)),
so total message cost grows linearly with the field while a flat protocol
grows superlinearly.  This bench measures transmissions per node per
execution across field sizes and asserts it stays flat.  Results in
``benchmarks/results/scalability.txt``.
"""

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.util.tables import render_table

SIZES = (2, 4, 9)


def run_size(cluster_count: int):
    config = ScenarioConfig(
        cluster_count=cluster_count,
        members_per_cluster=25,
        loss_probability=0.1,
        crash_count=1,
        executions=4,
        seed=17,
    )
    result = run_scenario(config)
    nodes = len(result.network)
    per_node_per_exec = result.messages.transmissions / nodes / 4
    return {
        "clusters": cluster_count,
        "nodes": nodes,
        "tx_per_node_per_execution": per_node_per_exec,
        "mean_completeness": result.properties.mean_completeness,
    }


def test_scalability_sweep(benchmark, write_result):
    rows = benchmark.pedantic(
        lambda: [run_size(c) for c in SIZES], rounds=1, iterations=1
    )
    keys = ["clusters", "nodes", "tx_per_node_per_execution",
            "mean_completeness"]
    write_result(
        "scalability",
        render_table(keys, [[r[k] for k in keys] for r in rows],
                     title="FDS cost vs field size (p=0.1)"),
    )
    costs = [r["tx_per_node_per_execution"] for r in rows]
    # Locality: per-node cost does not grow with the field (within 30%).
    assert max(costs) < 1.3 * min(costs)
    for r in rows:
        assert r["mean_completeness"] == 1.0
