"""Scalability bench: FDS cost as the field grows.

The paper's scalability argument: per-node FDS cost is local (O(cluster)),
so total message cost grows linearly with the field while a flat protocol
grows superlinearly.  This bench measures transmissions per node per
execution across field sizes and asserts it stays flat.  Results in
``benchmarks/results/scalability.txt``.

Each field size runs as a single-replication **campaign** through the
content-addressed store (``benchmarks/results/store``; override with
``REPRO_STORE``), so re-running the sweep replays cached summaries
bit-identically instead of re-simulating the fields.
"""

import os
import pathlib

from repro.campaign import ResultStore, run_campaign, scenario_repeat_plan
from repro.experiments.runner import ScenarioConfig
from repro.util.tables import render_table

SIZES = (2, 4, 9)
#: The array engine extends the sweep an order of magnitude further (the
#: largest event-engine size is the smallest array size, so the curves
#: overlap at 9 clusters).
SIZES_ARRAY = (9, 36, 144)
EXECUTIONS = 4
STORE_DIR = pathlib.Path(
    os.environ.get("REPRO_STORE", pathlib.Path(__file__).parent / "results" / "store")
)


def run_size(cluster_count: int, engine: str = "event"):
    config = ScenarioConfig(
        cluster_count=cluster_count,
        members_per_cluster=25,
        loss_probability=0.1,
        crash_count=1,
        executions=EXECUTIONS,
        seed=17,
        engine=engine,
    )
    store = ResultStore(STORE_DIR)
    plan = scenario_repeat_plan(config, seeds=[17])
    outcome = run_campaign(plan, store)
    assert outcome.complete, f"campaign {outcome.campaign_id}: {outcome.status}"
    summary = {key: s.mean for key, s in outcome.merged.metrics.items()}
    nodes = summary["nodes"]
    per_node_per_exec = summary["transmissions"] / nodes / EXECUTIONS
    return {
        "clusters": cluster_count,
        "nodes": nodes,
        "tx_per_node_per_execution": per_node_per_exec,
        "mean_completeness": summary["mean_completeness"],
        "cached": outcome.cache_hits > 0,
    }


def test_scalability_sweep(benchmark, write_result):
    rows = benchmark.pedantic(
        lambda: [run_size(c) for c in SIZES], rounds=1, iterations=1
    )
    keys = ["clusters", "nodes", "tx_per_node_per_execution",
            "mean_completeness", "cached"]
    write_result(
        "scalability",
        render_table(keys, [[r[k] for k in keys] for r in rows],
                     title="FDS cost vs field size (p=0.1)"),
    )
    costs = [r["tx_per_node_per_execution"] for r in rows]
    # Locality: per-node cost does not grow with the field (within 30%).
    assert max(costs) < 1.3 * min(costs)
    for r in rows:
        assert r["mean_completeness"] == 1.0


def test_scalability_sweep_array_engine(benchmark, write_result):
    """The same locality claim, one order of magnitude further out.

    The array engine counts logical broadcasts as transmissions (the
    same unit the event engine reports), so the per-node cost curve is
    directly comparable -- and must stay just as flat across a 10x
    larger field.
    """
    rows = benchmark.pedantic(
        lambda: [run_size(c, engine="array") for c in SIZES_ARRAY],
        rounds=1, iterations=1,
    )
    keys = ["clusters", "nodes", "tx_per_node_per_execution",
            "mean_completeness", "cached"]
    write_result(
        "scalability_array",
        render_table(keys, [[r[k] for k in keys] for r in rows],
                     title="FDS cost vs field size, array engine (p=0.1)"),
    )
    costs = [r["tx_per_node_per_execution"] for r in rows]
    assert max(costs) < 1.3 * min(costs)
    for r in rows:
        assert r["mean_completeness"] == 1.0
