"""FIG-6: regenerate Figure 6 -- P(False detection on CH) vs p for N in
{50, 75, 100} -- and benchmark the evaluation.

Written to ``benchmarks/results/fig6.txt``.  Shape checks encode the
paper's text: negligible below p = 0.25, below 1e-6 even at N=50 / p=0.5,
and always below the corresponding Figure 5 value (the DCH is safer than
the CH).
"""

from repro.analysis.ch_false_detection import p_false_detection_on_ch_log10
from repro.analysis.false_detection import p_false_detection
from repro.experiments.figures import (
    figure6_false_detection_on_ch,
    render_figure,
)


def test_fig6_regeneration(benchmark, write_result):
    series = benchmark(figure6_false_detection_on_ch)
    write_result(
        "fig6", render_figure(series, "Figure 6: P(False detection on CH)")
    )

    for n in (50, 75, 100):
        curve = series.curves[n]
        assert all(a <= b for a, b in zip(curve, curve[1:]))
    # Paper: "practically negligible or extremely low when p is below 0.25".
    for n in (50, 75, 100):
        assert series.value_at(n, 0.20) < 1e-20
    # Paper: "still below 10^-6 even when N drops to 50" (p = 0.5).
    assert series.value_at(50, 0.5) < 1e-6
    # Paper: the CH is *more* likely than the DCH to false-detect.
    for n in (50, 75, 100):
        for p in series.p_values:
            assert series.value_at(n, p) < p_false_detection(n, p)


def test_fig6_log_domain_reaches_paper_axis(benchmark, write_result):
    """The paper's y-axis reaches 1e-120; the log-domain form must cover
    the whole plotted range without underflow."""

    def deepest_point():
        return p_false_detection_on_ch_log10(100, 0.05)

    log10_value = benchmark(deepest_point)
    assert -120.0 < log10_value < -90.0
