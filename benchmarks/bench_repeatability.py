"""Replication bench: the headline properties across 10 independent seeds.

One seeded run proves little; this bench replicates the core scenario
(4 clusters, 2 crashes, p = 0.15) across 10 seeds and reports aggregate
completeness/accuracy -- the statistical statement EXPERIMENTS.md quotes.
Results in ``benchmarks/results/repeatability.txt``.
"""

from repro.experiments.repeat import repeat_scenario
from repro.experiments.runner import ScenarioConfig

SEEDS = tuple(range(10))


def test_repeatability(benchmark, write_result):
    config = ScenarioConfig(
        cluster_count=4,
        members_per_cluster=25,
        loss_probability=0.15,
        crash_count=2,
        executions=5,
    )
    result = benchmark.pedantic(
        lambda: repeat_scenario(config, SEEDS), rounds=1, iterations=1
    )
    write_result("repeatability", result.as_table())
    # Completeness 1.0 on every one of the 10 seeds.
    assert result.worst("mean_completeness") == 1.0
    # Zero lasting false suspicions on every seed.
    assert result.metrics["accuracy_violations"].maximum == 0.0
    # Observed loss tracks the configured probability.
    assert abs(result.mean("observed_loss_rate") - 0.15) < 0.01
