"""Microbenchmarks of the substrate: engine, medium, clustering, formation.

These document the simulator's throughput (events/s, transmissions/s) and
the cost of the structural algorithms, so scenario runtimes are
predictable.
"""

import numpy as np

from repro.cluster.formation import FormationConfig, run_formation
from repro.cluster.geometric import build_clusters
from repro.sim.engine import Simulator
from repro.sim.network import NetworkConfig, build_network
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import uniform_rect_placement


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule_in(0.001, tick)

        sim.schedule_in(0.001, tick)
        sim.run()
        return count

    assert benchmark(run_10k_events) == 10_000


def test_medium_broadcast_throughput(benchmark, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    placement = uniform_rect_placement(200, 500.0, 500.0, rng)
    network = build_network(
        placement, NetworkConfig(loss_probability=0.1, seed=1)
    )

    def blast():
        for nid in list(network.nodes)[:50]:
            network.medium.transmit(nid, "payload")
        network.sim.run()
        return network.medium.transmissions

    assert benchmark(blast) > 0


def test_unit_disk_graph_construction(benchmark):
    rng = np.random.default_rng(5)
    placement = uniform_rect_placement(1000, 1500.0, 1500.0, rng)
    graph = benchmark(UnitDiskGraph, placement, 100.0)
    assert len(graph) == 1000


def test_oracle_clustering_1000_nodes(benchmark):
    rng = np.random.default_rng(6)
    placement = uniform_rect_placement(1000, 1500.0, 1500.0, rng)
    graph = UnitDiskGraph(placement, 100.0)
    layout = benchmark(build_clusters, graph)
    assert len(layout.clusters) >= 10


def test_distributed_formation_300_nodes(benchmark):
    rng = np.random.default_rng(7)
    placement = uniform_rect_placement(300, 800.0, 800.0, rng)

    def form():
        network = build_network(
            placement, NetworkConfig(loss_probability=0.05, seed=2)
        )
        return run_formation(network, FormationConfig(thop=0.5, iterations=3))

    layout = benchmark.pedantic(form, rounds=1, iterations=1)
    assert len(layout.clustered_nodes()) > 250
