"""TAB-A1: every quantitative claim the paper's evaluation text makes,
checked against the reproduced measures and rendered as a checklist
(``benchmarks/results/claims.txt``).

This is the reproduction-fidelity gate: the paper publishes plots rather
than tables, so the *claims in the prose* are the checkable ground truth.
"""

from repro.experiments.figures import check_paper_claims
from repro.experiments.reporting import render_claims


def test_paper_claims_checklist(benchmark, write_result):
    results = benchmark(check_paper_claims)
    write_result("claims", render_claims(results))
    failing = [claim.claim_id for claim, ok in results if not ok]
    assert failing == [], f"paper claims violated: {failing}"
