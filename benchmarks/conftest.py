"""Benchmark fixtures: every bench writes its reproduced table to
``benchmarks/results/`` so the figures are inspectable after a run."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """A callable that persists a named text artifact."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return _write
