"""Large-field bench: the paper's "hundreds or thousands of hosts".

A 972-node, 36-cluster field with 4 concurrent crashes at p = 0.1 -- the
population scale the paper's application model states (Section 2.1).
Checks that the properties and the per-node cost hold at that scale, and
times the full run (the simulator's headline throughput number).
Results in ``benchmarks/results/large_field.txt``.

Beyond the event engine's practical ceiling, the round-level array
engine (``engine="array"``) carries the same scenario to N=10^5 in
seconds and to a N=10^6 smoke -- with a same-field event-vs-array
comparison pinning the >=10x speedup and verdict agreement at the
972-node size first.  Results in ``large_field_array.txt``.
"""

import time

from dataclasses import replace

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.sim.trace import NullTracer
from repro.util.tables import render_table


def test_thousand_node_field(benchmark, write_result):
    config = ScenarioConfig(
        cluster_count=36,
        members_per_cluster=26,
        loss_probability=0.1,
        crash_count=4,
        executions=3,
        seed=1,
    )
    result = benchmark.pedantic(
        lambda: run_scenario(config), rounds=1, iterations=1
    )
    summary = result.summary()
    write_result(
        "large_field",
        render_table(
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
            title="972-node field, 4 crashes, p=0.1, 3 executions",
        ),
    )
    assert len(result.network) > 900
    assert result.properties.mean_completeness == 1.0
    assert result.properties.accuracy_violations == ()
    # Locality: same per-node cost as the 52-node field (bench_scenario_scale).
    per_node_per_exec = result.messages.transmissions / len(result.network) / 3
    assert per_node_per_exec < 3.5


def test_array_engine_beats_event_tenfold(benchmark, write_result):
    """Same 972-node field through both engines: verdicts must agree and
    the array engine must be >= 10x faster (measured ~250x)."""
    config = ScenarioConfig(
        cluster_count=36,
        members_per_cluster=26,
        loss_probability=0.1,
        crash_count=4,
        executions=3,
        seed=1,
    )

    def run_pair():
        start = time.perf_counter()
        event = run_scenario(config, tracer=NullTracer())
        event_s = time.perf_counter() - start
        start = time.perf_counter()
        array = run_scenario(
            replace(config, engine="array"), tracer=NullTracer()
        )
        array_s = time.perf_counter() - start
        return event, event_s, array, array_s

    event, event_s, array, array_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    speedup = event_s / array_s
    write_result(
        "large_field_array",
        render_table(
            ["metric", "event", "array"],
            [
                ["wall_s", f"{event_s:.3f}", f"{array_s:.3f}"],
                ["speedup", "1.0", f"{speedup:.1f}x"],
                ["mean_completeness",
                 event.properties.mean_completeness,
                 array.properties.mean_completeness],
                ["accuracy_violations",
                 len(event.properties.accuracy_violations),
                 len(array.properties.accuracy_violations)],
            ],
            title="972-node field, event vs array engine",
        ),
    )
    assert speedup >= 10.0, f"array speedup {speedup:.1f}x < 10x"
    assert array.properties.mean_completeness == 1.0
    assert event.properties.mean_completeness == 1.0
    assert array.properties.accuracy_violations == ()


def test_hundred_thousand_node_field_array(benchmark, write_result):
    """N~=10^5 through the array engine at interactive speed (seconds).

    3448 clusters of 28 members (the paper's ~30-node cluster regime)
    -- a field the event engine would take tens of minutes to run.
    """
    config = ScenarioConfig(
        cluster_count=3448,
        members_per_cluster=28,
        loss_probability=0.1,
        crash_count=4,
        executions=3,
        seed=1,
        engine="array",
    )
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_scenario(config, tracer=NullTracer()),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - start
    summary = result.summary()
    write_result(
        "large_field_1e5",
        render_table(
            ["metric", "value"],
            [["wall_s", f"{elapsed:.2f}"],
             *[[k, v] for k, v in summary.items()]],
            title="99,992-node field, array engine, 4 crashes, p=0.1",
        ),
    )
    assert len(result.network) > 99_000
    assert result.properties.mean_completeness > 0.999
    assert elapsed < 60.0, f"10^5 field took {elapsed:.1f}s (not interactive)"


def test_million_node_field_smoke(benchmark, write_result):
    """N~=10^6 completes through the array engine (the scale headline)."""
    config = ScenarioConfig(
        cluster_count=34_482,
        members_per_cluster=28,
        loss_probability=0.1,
        crash_count=2,
        executions=3,
        seed=1,
        engine="array",
    )
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_scenario(config, tracer=NullTracer()),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - start
    write_result(
        "large_field_1e6",
        render_table(
            ["metric", "value"],
            [["nodes", len(result.network)],
             ["wall_s", f"{elapsed:.2f}"],
             ["mean_completeness", result.properties.mean_completeness],
             ["transmissions", result.messages.transmissions]],
            title="999,978-node field, array engine, 2 crashes, 3 executions",
        ),
    )
    assert len(result.network) > 990_000
    # Crash news crosses ~34k cluster boundaries at p=0.1 in two
    # spreading executions; a handful of straggler observers out of a
    # million is the lossy steady state, not a detection failure.
    assert result.properties.mean_completeness > 0.999
