"""Large-field bench: the paper's "hundreds or thousands of hosts".

A 972-node, 36-cluster field with 4 concurrent crashes at p = 0.1 -- the
population scale the paper's application model states (Section 2.1).
Checks that the properties and the per-node cost hold at that scale, and
times the full run (the simulator's headline throughput number).
Results in ``benchmarks/results/large_field.txt``.
"""

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.util.tables import render_table


def test_thousand_node_field(benchmark, write_result):
    config = ScenarioConfig(
        cluster_count=36,
        members_per_cluster=26,
        loss_probability=0.1,
        crash_count=4,
        executions=3,
        seed=1,
    )
    result = benchmark.pedantic(
        lambda: run_scenario(config), rounds=1, iterations=1
    )
    summary = result.summary()
    write_result(
        "large_field",
        render_table(
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
            title="972-node field, 4 crashes, p=0.1, 3 executions",
        ),
    )
    assert len(result.network) > 900
    assert result.properties.mean_completeness == 1.0
    assert result.properties.accuracy_violations == ()
    # Locality: same per-node cost as the 52-node field (bench_scenario_scale).
    per_node_per_exec = result.messages.transmissions / len(result.network) / 3
    assert per_node_per_exec < 3.5
