"""Baseline comparison bench: cluster FDS vs gossip / SWIM / flooding /
centralized, on the same field, same loss, same faultload.

The paper argues clustering wins on scalability (message cost) and
locality (no false suspicion of unreachable-but-alive nodes); this bench
quantifies both.  Results in ``benchmarks/results/baselines.txt``.
"""

from repro.baselines.centralized import CentralizedConfig, install_centralized
from repro.baselines.flooding import FloodingConfig, install_flooding
from repro.baselines.gossip import GossipConfig, install_gossip
from repro.baselines.swim import SwimConfig, install_swim
from repro.cluster.geometric import build_clusters
from repro.failure.injection import FailureInjector
from repro.fds.config import FdsConfig
from repro.fds.service import install_fds
from repro.metrics.collectors import collect_message_counts
from repro.metrics.properties import evaluate_histories, evaluate_properties
from repro.sim.network import NetworkConfig, build_network
from repro.topology.generators import multi_cluster_field
from repro.topology.graph import UnitDiskGraph
from repro.util.rng import RngFactory
from repro.util.tables import render_table

LOSS = 0.1
HORIZON = 36.0


def make_field(seed=0):
    rngs = RngFactory(seed)
    placement = multi_cluster_field(4, 25, 100.0, rng=rngs.stream("placement"))
    return placement


def run_fds(placement, seed=0):
    network = build_network(
        placement, NetworkConfig(loss_probability=LOSS, seed=seed)
    )
    layout = build_clusters(UnitDiskGraph(placement, 100.0))
    cfg = FdsConfig(phi=10.0, thop=0.5)
    deployment = install_fds(network, layout, cfg)
    injector = FailureInjector(network, cfg)
    victim = sorted(
        layout.clusters[layout.heads[-1]].ordinary_members
    )[0]
    injector.crash_before_execution(victim, 1)
    deployment.run_executions(6)
    report = evaluate_properties(deployment)
    counts = collect_message_counts(deployment)
    return {
        "detector": "cluster-fds",
        "messages": float(counts.transmissions),
        "completeness": report.completeness[victim],
        "false_suspicion_pairs": float(len(report.accuracy_violations)),
    }


def run_baseline(placement, installer, name, seed=0, **kwargs):
    network = build_network(
        placement, NetworkConfig(loss_probability=LOSS, seed=seed)
    )
    deployment = installer(network, until=HORIZON, **kwargs)
    network.sim.run_until(12.0)
    victim = sorted(network.operational_ids())[40]
    network.crash(victim)
    deployment.run_until(HORIZON)
    if name == "centralized":
        histories = {deployment.station: deployment.station_history()}
        messages = sum(
            p.heartbeats_sent for p in deployment.protocols.values()
        )
    else:
        histories = deployment.histories()
        messages = deployment.messages_sent()
    report = evaluate_histories(network, histories)
    return {
        "detector": name,
        "messages": float(messages),
        "completeness": report.completeness.get(victim, 0.0),
        "false_suspicion_pairs": float(len(report.accuracy_violations)),
    }


def test_baseline_comparison(benchmark, write_result):
    placement = make_field()

    def run_all():
        rows = [run_fds(placement)]
        rows.append(
            run_baseline(
                placement, install_gossip, "gossip",
                config=GossipConfig(interval=1.0, fail_after=6.0),
            )
        )
        rows.append(
            run_baseline(
                placement, install_swim, "swim(global)",
                config=SwimConfig(period=1.0, ack_timeout=0.2),
            )
        )
        rows.append(
            run_baseline(
                placement, install_flooding, "flooding",
                config=FloodingConfig(interval=1.0, miss_threshold=4),
            )
        )
        rows.append(
            run_baseline(
                placement, install_centralized, "centralized",
                station=0, config=CentralizedConfig(interval=1.0),
            )
        )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    keys = ["detector", "messages", "completeness", "false_suspicion_pairs"]
    write_result(
        "baselines",
        render_table(keys, [[r[k] for k in keys] for r in rows],
                     title=f"one member crash, p={LOSS}, 104-node field"),
    )
    by_name = {r["detector"]: r for r in rows}
    fds = by_name["cluster-fds"]
    # The cluster FDS reaches full completeness without false suspicion.
    assert fds["completeness"] == 1.0
    assert fds["false_suspicion_pairs"] == 0.0
    # Gossip and flooding reach the field too but pay more messages for
    # equal wall-clock coverage.
    assert by_name["gossip"]["messages"] > fds["messages"]
    assert by_name["flooding"]["messages"] > fds["messages"]
    # SWIM with global membership false-suspects unreachable nodes.
    assert by_name["swim(global)"]["false_suspicion_pairs"] > 0
    # The centralized station misses the (out-of-range) victim entirely.
    assert by_name["centralized"]["completeness"] < 1.0
