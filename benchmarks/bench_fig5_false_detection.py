"""FIG-5: regenerate Figure 5 -- P^(False detection) vs p for N in
{50, 75, 100} -- and benchmark the evaluation.

The benchmark times the full-grid sweep (30 closed-form evaluations); the
regenerated curves are written to ``benchmarks/results/fig5.txt`` and
checked against the paper's reported behaviour (axis span, ordering,
monotonicity, the "very small even at p = 0.5" claims).
"""

from repro.analysis.false_detection import p_false_detection
from repro.experiments.figures import figure5_false_detection, render_figure


def test_fig5_regeneration(benchmark, write_result):
    series = benchmark(figure5_false_detection)
    write_result("fig5", render_figure(series, "Figure 5: P^(False detection)"))

    # Shape checks against the published figure.
    for n in (50, 75, 100):
        curve = series.curves[n]
        assert all(a < b for a, b in zip(curve, curve[1:])), "monotone in p"
        assert curve[0] > 1e-25, "top of the paper's axis span"
        assert curve[-1] < 1.0
    # Curves ordered by density: N=50 worst, N=100 best, everywhere.
    for i in range(len(series.p_values)):
        assert series.curves[50][i] > series.curves[75][i] > series.curves[100][i]
    # The paper's headline claims.
    assert series.value_at(50, 0.5) < 1e-2       # "still very reasonable"
    assert series.value_at(75, 0.5) < 1e-3       # "very small"
    assert series.value_at(100, 0.5) < 1e-4      # "very small"


def test_fig5_literal_form_benchmark(benchmark):
    """The paper's O(N^2) double sum, timed at the heaviest grid point."""
    from repro.analysis.false_detection import p_false_detection_literal

    result = benchmark(p_false_detection_literal, 100, 0.5)
    assert result == p_false_detection(100, 0.5) or abs(
        result - p_false_detection(100, 0.5)
    ) < 1e-12 * result
