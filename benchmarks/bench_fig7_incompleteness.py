"""FIG-7: regenerate Figure 7 -- P^(Incompleteness) vs p for N in
{50, 75, 100} -- and benchmark the evaluation.

Written to ``benchmarks/results/fig7.txt``.  Shape checks encode the
paper's observations: robust against loss, big density win from N=50 to
N=100, and higher sensitivity to p at larger N.
"""

import math

from repro.experiments.figures import figure7_incompleteness, render_figure


def test_fig7_regeneration(benchmark, write_result):
    series = benchmark(figure7_incompleteness)
    write_result("fig7", render_figure(series, "Figure 7: P^(Incompleteness)"))

    for n in (50, 75, 100):
        curve = series.curves[n]
        assert all(a < b for a, b in zip(curve, curve[1:]))
        # Peer forwarding always improves on the raw broadcast loss p.
        for p, value in zip(series.p_values, curve):
            assert value < p
    # Paper: N 50 -> 100 decreases the measure significantly.
    for i, p in enumerate(series.p_values):
        assert series.curves[100][i] < series.curves[50][i] * 0.15
    # Paper: sensitivity to p grows with N (curves steepen).
    def decades(n):
        return math.log10(series.curves[n][-1]) - math.log10(series.curves[n][0])

    assert decades(100) > decades(75) > decades(50)
