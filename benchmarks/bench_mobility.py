"""Mobility extension bench: FDS properties vs node speed.

The paper defers host migration but claims the framework extends to it.
This bench moves nodes with random-waypoint mobility at increasing speeds,
re-forms clusters every other execution, and reports completeness /
residual suspicion -- locating the speed envelope where the stationary
analysis still holds.  Results in ``benchmarks/results/mobility.txt``.
"""

import numpy as np

from repro.cluster.remediation import ReclusteringPolicy
from repro.failure.injection import FailureInjector
from repro.fds.config import FdsConfig
from repro.metrics.properties import evaluate_properties
from repro.sim.mobility import RandomWaypoint
from repro.topology.generators import multi_cluster_field
from repro.cluster.geometric import build_clusters
from repro.fds.service import install_fds
from repro.sim.network import NetworkConfig, build_network
from repro.topology.graph import UnitDiskGraph
from repro.util.rng import RngFactory
from repro.util.tables import render_table

SPEEDS = (0.0, 1.0, 3.0)


def deploy(placement, p, seed, fds_config):
    layout = build_clusters(UnitDiskGraph(placement, radius=100.0))
    network = build_network(
        placement, NetworkConfig(loss_probability=p, seed=seed)
    )
    deployment = install_fds(network, layout, fds_config)
    return deployment, layout, None, network


def run_speed(speed: float, seed: int = 8):
    rngs = RngFactory(seed)
    placement = multi_cluster_field(
        3, 20, 100.0, rng=rngs.stream("placement")
    )
    cfg = FdsConfig(phi=10.0, thop=0.5)
    deployment, layout, _tracer, network = deploy(
        placement, p=0.05, seed=seed, fds_config=cfg
    )
    if speed > 0:
        mobility = RandomWaypoint(
            width=500.0, height=300.0, speed_min=speed * 0.5,
            speed_max=speed, rng=rngs.stream("mobility"),
        )
        mobility.install(network.sim, network.medium, tick=1.0, until=1000.0)
    injector = FailureInjector(network, cfg)
    victim = sorted(layout.clusters[layout.heads[1]].ordinary_members)[0]
    injector.crash_before_execution(victim, execution=1)
    policy = ReclusteringPolicy(deployment)
    policy.run_with_reclustering(6, recluster_every=2)
    report = evaluate_properties(deployment)
    return {
        "speed_mps": speed,
        "completeness": report.completeness[victim],
        "false_suspicion_pairs": float(len(report.accuracy_violations)),
        "reclusterings": float(policy.reclusterings),
    }


def test_mobility_envelope(benchmark, write_result):
    rows = benchmark.pedantic(
        lambda: [run_speed(s) for s in SPEEDS], rounds=1, iterations=1
    )
    keys = ["speed_mps", "completeness", "false_suspicion_pairs",
            "reclusterings"]
    write_result(
        "mobility",
        render_table(keys, [[r[k] for k in keys] for r in rows],
                     title="FDS under random-waypoint mobility "
                           "(recluster every 2 executions)"),
    )
    assert rows[0]["completeness"] == 1.0  # stationary baseline
    assert rows[1]["completeness"] >= 0.9  # 1 m/s: well inside the envelope
