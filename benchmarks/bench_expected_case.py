"""Average-case vs worst-case bounds (our extension of Section 5).

The paper's Figures 5 and 7 are worst-case bounds (member on the
circumference); integrating over uniform member positions gives the
expected per-member rates a deployment actually pays.  The table shows
both and their ratio -- i.e. how pessimistic the published bounds are.
Results in ``benchmarks/results/expected_case.txt``.
"""

from repro.analysis.expected import (
    expected_cluster_false_detections,
    expected_false_detection,
    expected_incompleteness,
)
from repro.analysis.false_detection import p_false_detection
from repro.analysis.incompleteness import p_incompleteness
from repro.util.tables import render_table

POINTS = [(50, 0.3), (50, 0.5), (75, 0.5), (100, 0.5)]


def sweep():
    rows = []
    for n, p in POINTS:
        worst_fd = p_false_detection(n, p)
        mean_fd = expected_false_detection(n, p)
        worst_inc = p_incompleteness(n, p)
        mean_inc = expected_incompleteness(n, p)
        rows.append([
            f"N={n} p={p}",
            worst_fd, mean_fd, worst_fd / mean_fd,
            worst_inc, mean_inc, worst_inc / mean_inc,
            expected_cluster_false_detections(n, p),
        ])
    return rows


def test_expected_case_table(benchmark, write_result):
    rows = benchmark(sweep)
    write_result(
        "expected_case",
        render_table(
            ["point", "fd_worst", "fd_mean", "fd_ratio",
             "inc_worst", "inc_mean", "inc_ratio", "cluster_fd_per_exec"],
            rows,
            title="worst-case bound vs position-averaged expectation",
        ),
    )
    for row in rows:
        assert row[3] > 1.0  # worst case really is an upper bound
        assert row[6] > 1.0
    # The bounds are meaningfully conservative (>= 2x) at every point.
    assert min(row[3] for row in rows) > 2.0
