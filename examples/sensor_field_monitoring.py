#!/usr/bin/env python3
"""Air-dropped sensor field monitoring -- the paper's motivating scenario.

A large field is seeded by discrete air-drops (Gaussian blobs of sensors),
clustered by the *distributed* formation protocol running over the lossy
radio medium, and monitored by the FDS while nodes attrit.  The operations
team's view -- how many resources remain, per the failure reports reaching
an arbitrary surviving node -- is compared against ground truth, and
against a centralized base-station monitor that only covers one radio disk
(the scalability wall the paper's introduction leads with).

Run:  python examples/sensor_field_monitoring.py
"""

import numpy as np

from repro import (
    FdsConfig,
    FormationConfig,
    NetworkConfig,
    build_network,
    evaluate_properties,
    run_formation,
)
from repro.baselines.centralized import CentralizedConfig, install_centralized
from repro.failure.injection import FailureInjector
from repro.fds.service import install_fds
from repro.topology.placement import gaussian_blobs_placement
from repro.util.geometry import Vec2


def main() -> None:
    rng = np.random.default_rng(seed=11)

    # Six air-drops of ~35 sensors each, release points 150 m apart so the
    # blobs merge into one connected field.
    drop_points = [
        Vec2(0.0, 0.0), Vec2(150.0, 40.0), Vec2(300.0, 0.0),
        Vec2(40.0, 160.0), Vec2(190.0, 190.0), Vec2(330.0, 150.0),
    ]
    positions = gaussian_blobs_placement(
        counts=[50] * len(drop_points), centers=drop_points, sigma=48.0, rng=rng
    )
    print(f"air-dropped {len(positions)} sensors in {len(drop_points)} releases")

    network = build_network(
        positions,
        NetworkConfig(transmission_range=100.0, loss_probability=0.12, seed=11),
    )

    # Distributed cluster formation over the lossy medium (features F1-F4).
    formation = FormationConfig(thop=0.5, iterations=4)
    layout = run_formation(network, formation)
    summary = layout.summary()
    print(
        f"self-organized into {summary['clusters']:.0f} clusters covering "
        f"{summary['clustered_nodes']:.0f}/{len(positions)} sensors "
        f"({summary['unclustered_nodes']:.0f} unclustered)"
    )

    # Install the FDS after formation settles.
    fds_start = network.sim.now + 1.0
    config = FdsConfig(phi=30.0, thop=0.5)
    deployment = install_fds(network, layout, config, start_time=fds_start)

    # Attrition: 8 sensors die across the mission (environment, battery).
    injector = FailureInjector(network, config, fds_start=fds_start)
    candidates = [
        nid for nid in network.operational_ids() if nid not in layout.heads
    ]
    victims = rng.choice(np.asarray(candidates), size=8, replace=False)
    for i, victim in enumerate(sorted(int(v) for v in victims)):
        injector.crash_before_execution(victim, execution=1 + i % 4)

    deployment.run_executions(7)

    # The operations team reads any one surviving node.
    report = evaluate_properties(deployment)
    observer = network.operational_ids()[0]
    believed_lost = deployment.protocols[observer].history.known
    actually_lost = set(network.crashed_ids())
    print("\n--- operations view (read from one surviving sensor) ---")
    print(f"ground truth losses : {len(actually_lost)}")
    print(f"reported losses     : {len(believed_lost)}")
    print(f"mean completeness   : {report.mean_completeness:.1%}")
    print(f"false suspicions    : {len(report.accuracy_violations)}")
    if report.mean_completeness < 1.0:
        print(
            "(sub-100% completeness means some cluster pair has no member "
            "adjacent to the peer CH; the paper notes such boundaries can "
            "be bridged by two-intermediate-node gateways but does not "
            "adopt them, deferring to an inter-cluster routing protocol)"
        )

    # Contrast: a centralized base station at the field centroid.
    network2 = build_network(
        positions,
        NetworkConfig(transmission_range=100.0, loss_probability=0.12, seed=12),
    )
    station = min(
        network2.nodes,
        key=lambda nid: network2.medium.position_of(nid).distance_to(
            Vec2(165.0, 90.0)
        ),
    )
    central = install_centralized(
        network2, station, CentralizedConfig(interval=2.0), until=40.0
    )
    network2.sim.run_until(40.0)
    print("\n--- centralized base-station baseline ---")
    print(
        f"station {station} can hear only {central.coverage():.1%} of the "
        "field: everything beyond one radio disk is invisible to it, "
        "which is why the paper clusters."
    )


if __name__ == "__main__":
    main()
