#!/usr/bin/env python3
"""UAV swarm: clusterhead loss, DCH takeover, and resource replenishment.

Exercises the paper's redundancy features end to end:

- **F2 (deputy clusterheads):** the swarm loses a clusterhead mid-mission;
  the highest-ranked DCH detects it via the CH-failure detection rule,
  broadcasts the takeover, and keeps the cluster's FDS running.
- **F4/F5 (open-ended admission):** replacement vehicles arrive later as
  *unmarked* nodes; their heartbeats double as membership subscriptions
  and the CH admits them in its next health-status update.
- **Energy balancing:** peer forwarding answers update requests with
  waiting periods inversely proportional to remaining energy, so
  high-energy vehicles shoulder the relaying.

Run:  python examples/uav_swarm_replenishment.py
"""

import numpy as np

from repro import (
    EnergyConfig,
    EnergyModel,
    FdsConfig,
    NetworkConfig,
    RecordingTracer,
    UnitDiskGraph,
    build_clusters,
    build_network,
    evaluate_properties,
)
from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.service import install_fds
from repro.topology.generators import corridor_field
from repro.types import NodeRole


def main() -> None:
    rng = np.random.default_rng(seed=23)

    # A patrol line: three overlapping clusters of 24 vehicles each.
    positions = corridor_field(
        cluster_count=3, members_per_cluster=24, radius=100.0, rng=rng
    )
    graph = UnitDiskGraph(positions, radius=100.0)
    layout = build_clusters(graph)
    middle_ch = layout.heads[1]
    middle_cluster = layout.clusters[middle_ch]
    print(
        f"swarm of {len(positions)} vehicles in {len(layout.heads)} clusters; "
        f"middle cluster head={middle_ch}, "
        f"deputies={list(middle_cluster.deputies)}"
    )

    tracer = RecordingTracer()
    network = build_network(
        positions,
        NetworkConfig(transmission_range=100.0, loss_probability=0.1, seed=23),
        tracer=tracer,
    )
    config = FdsConfig(phi=20.0, thop=0.5)
    energy = EnergyModel(EnergyConfig(capacity=500.0, harvest_rate=0.02))
    deployment = install_fds(network, layout, config, energy=energy)

    # Phase 1: the middle clusterhead is lost to ground fire.
    injector = FailureInjector(network, config)
    injector.crash_before_execution(middle_ch, execution=2)
    deployment.run_executions(4)

    takeovers = tracer.filter(ev.TAKEOVER)
    assert takeovers, "the DCH should have taken over"
    new_head = int(takeovers[0].detail["new_head"])
    print(
        f"\nCH {middle_ch} lost at t~{injector.scheduled[0].time:.0f}s; "
        f"deputy {new_head} detected it and took over at "
        f"t={takeovers[0].time:.1f}s"
    )
    survivors = [
        nid
        for nid in middle_cluster.members
        if network.nodes[nid].is_operational
    ]
    adopted = sum(
        1 for nid in survivors if deployment.protocols[nid].head == new_head
    )
    print(f"{adopted}/{len(survivors)} surviving members follow the new head")

    # Phase 2: two replacement vehicles join near the weakened cluster.
    # They enter UNMARKED; their heartbeats act as membership
    # subscriptions (feature F5).
    center = network.medium.position_of(new_head)
    from repro.cluster.state import LocalClusterView
    from repro.sim.node import SimNode
    from repro.types import NodeId
    from repro.util.geometry import Vec2, sample_in_disk

    new_ids = []
    for k in range(2):
        nid = NodeId(max(network.nodes) + 1)
        pos = sample_in_disk(rng, Vec2(center.x, center.y), 60.0)
        node = SimNode(nid, pos, network.sim, network.medium)
        network.nodes[nid] = node
        view = LocalClusterView(
            node_id=nid,
            role=NodeRole.UNMARKED,
            head=nid,
            members=frozenset({nid}),
            deputies=(),
        )
        from repro.fds.service import FdsProtocol

        protocol = FdsProtocol(config, view, energy=None)
        node.add_protocol(protocol)
        deployment.protocols[nid] = protocol
        next_epoch = deployment.start_time + (
            deployment.executions_scheduled * config.phi
        )
        protocol.start(
            next_epoch, 3, first_index=deployment.executions_scheduled
        )
        new_ids.append(nid)
        print(f"replacement vehicle {nid} inserted at "
              f"({pos.x:.0f}, {pos.y:.0f}), unmarked")

    deployment.run_executions(3)

    print("\n--- after replenishment ---")
    for nid in new_ids:
        protocol = deployment.protocols[nid]
        status = (
            f"admitted to cluster of head {protocol.head}"
            if protocol.marked
            else "still unmarked"
        )
        print(f"vehicle {nid}: {status}")

    report = evaluate_properties(deployment)
    print(f"mean completeness : {report.mean_completeness:.1%}")
    print(f"false suspicions  : {len(report.accuracy_violations)}")
    spread = energy.spread()
    print(f"energy spread (max-min): {spread:.1f} units "
          "(peer forwarding balances the relaying load)")


if __name__ == "__main__":
    main()
