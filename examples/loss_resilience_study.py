#!/usr/bin/env python3
"""Loss-resilience study: regenerate the paper's evaluation and extend it.

Prints the three figures of Section 5 as tables (the same curves, as
numbers), checks every quantitative claim the paper's text makes about
them, cross-validates the closed forms against Monte Carlo and against the
real protocol running in the simulator, and finishes with two ablations
showing *why* the redundancy mechanisms matter.

Run:  python examples/loss_resilience_study.py            (full, ~1 min)
      python examples/loss_resilience_study.py --fast     (analytic only)
"""

import sys

import numpy as np

from repro.analysis.montecarlo import mc_false_detection, mc_incompleteness
from repro.experiments.ablations import (
    ablation_digest,
    ablation_peer_forwarding,
)
from repro.experiments.figures import (
    check_paper_claims,
    figure5_false_detection,
    figure6_false_detection_on_ch,
    figure7_incompleteness,
    render_figure,
)
from repro.experiments.reporting import render_ablation, render_claims
from repro.experiments.scenarios import (
    single_cluster_validation,
    validation_summary,
)


def main(fast: bool) -> None:
    # 1. The three figures, as tables.
    for series, title in (
        (figure5_false_detection(), "Figure 5: P^(False detection)"),
        (figure6_false_detection_on_ch(), "Figure 6: P(False detection on CH)"),
        (figure7_incompleteness(), "Figure 7: P^(Incompleteness)"),
    ):
        print(render_figure(series, title))
        print()

    # 2. The paper's textual claims about those figures.
    print(render_claims(check_paper_claims()))
    print()

    # 3. Monte Carlo cross-check at a measurable corner (N=50, p=0.5).
    rng = np.random.default_rng(0)
    mc_fd = mc_false_detection(50, 0.5, trials=200_000, rng=rng)
    mc_inc = mc_incompleteness(50, 0.5, trials=200_000, rng=rng)
    print("Monte Carlo cross-check (N=50, p=0.5):")
    print(f"  false detection : mc={mc_fd.estimate:.3e}  "
          f"ci={tuple(round(x, 6) for x in mc_fd.interval())}")
    print(f"  incompleteness  : mc={mc_inc.estimate:.3e}  "
          f"ci={tuple(round(x, 6) for x in mc_inc.interval())}")
    print()

    if fast:
        print("(--fast: skipping protocol-in-the-loop and ablations)")
        return

    # 4. The real protocol in the loop.
    result = single_cluster_validation(n=50, p=0.5, executions=200, seed=3)
    summary = validation_summary(result)
    print("Protocol-in-the-loop (real FDS, N=50, p=0.5, 200 executions):")
    print(f"  incompleteness  : measured={summary['inc_rate_measured']:.4f}  "
          f"analytic={summary['inc_rate_analytic']:.4f}  "
          f"ci=({summary['inc_ci_low']:.4f}, {summary['inc_ci_high']:.4f})")
    print(f"  false detections: {result.false_detections} events "
          f"(analytic expectation "
          f"{result.analytic_false_detection * result.executions:.2f})")
    print(f"  residual accuracy violations: "
          f"{result.accuracy_violations_final}")
    print()

    # 5. Ablations: what each mechanism buys.
    print(render_ablation(ablation_digest(n=40, p=0.3, executions=40)))
    print()
    print(render_ablation(ablation_peer_forwarding(n=40, p=0.3, executions=40)))


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
