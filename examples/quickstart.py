#!/usr/bin/env python3
"""Quickstart: deploy the cluster-based FDS on a small sensor field.

Builds a 4-cluster field of ~125 hosts with 100 m radios and 15% message
loss, forms clusters, runs the failure detection service, crashes two
nodes, and shows that every operational node learns of both failures while
nobody is falsely suspected.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FdsConfig,
    NetworkConfig,
    RecordingTracer,
    UnitDiskGraph,
    build_clusters,
    build_network,
    collect_message_counts,
    evaluate_properties,
    install_fds,
)
from repro.failure.injection import FailureInjector
from repro.metrics.properties import detection_latency
from repro.topology.generators import multi_cluster_field


def main() -> None:
    rng = np.random.default_rng(seed=7)

    # 1. Place the field: 4 overlapping cluster disks, 30 members each.
    positions = multi_cluster_field(
        cluster_count=4, members_per_cluster=30, radius=100.0, rng=rng
    )
    print(f"deployed {len(positions)} hosts")

    # 2. Form clusters (geometric oracle -- see examples further down for
    #    the distributed formation protocol running over the lossy medium).
    graph = UnitDiskGraph(positions, radius=100.0)
    layout = build_clusters(graph)
    summary = layout.summary()
    print(
        f"clusters: {summary['clusters']:.0f}, "
        f"sizes {summary['min_cluster_size']:.0f}-"
        f"{summary['max_cluster_size']:.0f}, "
        f"boundaries: {summary['boundaries']:.0f}"
    )

    # 3. Build the simulated network: unit-disk radios, promiscuous
    #    receiving, 15% independent message loss -- the paper's model.
    tracer = RecordingTracer()
    network = build_network(
        positions,
        NetworkConfig(transmission_range=100.0, loss_probability=0.15, seed=7),
        tracer=tracer,
    )

    # 4. Install the FDS and schedule two fail-stop crashes between
    #    executions (the paper's timing assumption).
    config = FdsConfig(phi=30.0, thop=0.5)
    deployment = install_fds(network, layout, config)
    injector = FailureInjector(network, config)
    victims = [network.operational_ids()[37], network.operational_ids()[88]]
    crash_times = {}
    for i, victim in enumerate(victims):
        event = injector.crash_before_execution(victim, execution=i + 1)
        crash_times[victim] = event.time
        print(f"scheduled crash of node {victim} at t={event.time:.1f}s")

    # 5. Run five FDS executions (heartbeat interval 30 s).
    deployment.run_executions(5)

    # 6. Score completeness and accuracy against ground truth.
    report = evaluate_properties(deployment)
    print("\n--- results ---")
    for failure, fraction in report.completeness.items():
        print(f"failure of node {failure}: known by {fraction:.1%} of the field")
    print(f"accuracy violations: {len(report.accuracy_violations)}")
    for victim, latency in detection_latency(tracer, crash_times).items():
        shown = f"{latency:.1f}s" if latency is not None else "never"
        print(f"detection latency for node {victim}: {shown}")
    counts = collect_message_counts(deployment)
    print(
        f"messages: {counts.transmissions} transmissions, "
        f"observed loss rate {counts.loss_rate:.1%}, "
        f"{counts.reports_sent} inter-cluster reports"
    )

    from repro.viz import render_field_map

    print("\nfield map:")
    print(render_field_map(positions, layout=layout,
                           crashed=set(network.crashed_ids()),
                           width=64, height=14))


if __name__ == "__main__":
    main()
