#!/usr/bin/env python3
"""In-network aggregation sharing the FDS (the paper's Section 6 vision).

A temperature-sensing field answers a continuous AVG query by riding
measurements on FDS heartbeats and cluster partials on health-status
updates -- (almost) zero extra messages.  When sensors die, the FDS's
failure knowledge immediately excludes them from the aggregate, and when
duty-cycled sensors sleep, announced absences keep the failure detector
quiet: all three Section 6 threads (aggregation, message sharing, sleep
management) in one scenario.

Run:  python examples/field_aggregation.py
"""

import statistics

import numpy as np

from repro import (
    FdsConfig,
    NetworkConfig,
    UnitDiskGraph,
    build_clusters,
    build_network,
    collect_message_counts,
)
from repro.aggregation import AggregateKind, AggregationConfig, attach_aggregation
from repro.failure.injection import FailureInjector
from repro.fds.service import install_fds
from repro.power import DutyCycleSchedule, install_power_management
from repro.topology.generators import corridor_field


def main() -> None:
    rng = np.random.default_rng(seed=41)
    positions = corridor_field(
        cluster_count=3, members_per_cluster=25, radius=100.0, rng=rng
    )
    layout = build_clusters(UnitDiskGraph(positions, radius=100.0))
    network = build_network(
        positions, NetworkConfig(transmission_range=100.0,
                                 loss_probability=0.1, seed=41)
    )
    config = FdsConfig(phi=10.0, thop=0.5)
    deployment = install_fds(network, layout, config)

    # Each sensor measures a temperature field with an east-west gradient.
    def temperature(node_id, execution):
        x = network.medium.position_of(node_id).x
        return 15.0 + x / 40.0

    services = attach_aggregation(
        deployment, temperature, AggregationConfig(kind=AggregateKind.AVG)
    )

    # A third of the sensors duty-cycle to save power; announced sleep
    # keeps the FDS quiet about them.
    install_power_management(
        deployment, DutyCycleSchedule(awake=2, asleep_count=1)
    )

    # Two sensors die mid-mission.
    injector = FailureInjector(network, config)
    victims = [
        sorted(layout.clusters[layout.heads[1]].ordinary_members)[3],
        sorted(layout.clusters[layout.heads[2]].ordinary_members)[5],
    ]
    for i, victim in enumerate(victims):
        injector.crash_before_execution(victim, execution=2 + i)

    deployment.run_executions(8)

    truth = statistics.mean(
        temperature(nid, 0) for nid in network.operational_ids()
    )
    print(f"{len(positions)} sensors in {len(layout.heads)} clusters; "
          f"{len(victims)} died mid-mission\n")
    print("field-wide AVG temperature, as seen at each clusterhead:")
    for head in layout.heads:
        service = services[head]
        print(
            f"  CH {head:3d}: {service.current_value():7.3f} degC "
            f"({service.contributor_count()} live contributors)"
        )
    print(f"  ground truth over operational sensors: {truth:7.3f} degC")

    counts = collect_message_counts(deployment)
    extra = sum(s.shares_sent for s in services.values())
    print(
        f"\nmessage sharing: {counts.transmissions} total transmissions, "
        f"of which only {extra} belong to the aggregation layer"
    )
    for victim in victims:
        known = all(
            victim in deployment.protocols[nid].history
            for nid in network.operational_ids()
        )
        print(f"failure of sensor {victim} known everywhere: {known}")


if __name__ == "__main__":
    main()
